// Oracle property test (DESIGN.md §6): the distributed wait state tracker
// must agree with the formal transition system on the same execution.
//
// For randomized programs we run the application twice with identical
// timing: once under a Recorder (centralized matching -> MatchedTrace ->
// formal TransitionSystem), once under the full distributed tool with a
// zero-overhead configuration (no credits, no wrapper cost) so both runs
// observe the *same* execution. The per-process terminal timestamps l_i,
// the blocked sets, and the finished sets must coincide.
#include <gtest/gtest.h>

#include <vector>

#include "must/harness.hpp"
#include "must/recorder.hpp"
#include "support/rng.hpp"
#include "waitstate/transition_system.hpp"

namespace wst::must {
namespace {

using mpi::Proc;

/// A deterministic, coordinated random program plan.
struct Plan {
  std::int32_t procs = 4;
  struct Phase {
    enum Kind {
      kRingBsend,
      kPairIsendIrecv,
      kBarrier,
      kAllreduce,
      kWildcardGather,
      kProbeChain,
      kRecvRecvDeadlock,  // terminal phase: two ranks deadlock
      kMissingBarrier,    // terminal phase: one rank skips the barrier
    } kind = kRingBsend;
    std::vector<mpi::Rank> perm;  // pairing permutation
    mpi::Rank root = 0;
    std::int32_t fanOut = 2;  // senders for wildcard gather
  };
  std::vector<Phase> phases;
  bool endsWithDeadlock = false;
};

Plan makePlan(std::uint64_t seed, std::int32_t procs) {
  support::Rng rng(seed);
  Plan plan;
  plan.procs = procs;
  const int phaseCount = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < phaseCount; ++i) {
    Plan::Phase phase;
    switch (rng.below(6)) {
      case 0: phase.kind = Plan::Phase::kRingBsend; break;
      case 1: phase.kind = Plan::Phase::kPairIsendIrecv; break;
      case 2: phase.kind = Plan::Phase::kBarrier; break;
      case 3: phase.kind = Plan::Phase::kAllreduce; break;
      case 4: phase.kind = Plan::Phase::kWildcardGather; break;
      case 5: phase.kind = Plan::Phase::kProbeChain; break;
    }
    phase.root = static_cast<mpi::Rank>(rng.below(procs));
    phase.fanOut =
        1 + static_cast<std::int32_t>(rng.below(std::max(1, procs - 1)));
    // Random pairing permutation: shuffle 0..p-1.
    phase.perm.resize(static_cast<std::size_t>(procs));
    for (mpi::Rank r = 0; r < procs; ++r)
      phase.perm[static_cast<std::size_t>(r)] = r;
    for (std::size_t j = phase.perm.size(); j > 1; --j) {
      std::swap(phase.perm[j - 1], phase.perm[rng.below(j)]);
    }
    plan.phases.push_back(std::move(phase));
  }
  if (rng.chance(0.4)) {
    Plan::Phase fin;
    fin.kind = rng.chance(0.5) ? Plan::Phase::kRecvRecvDeadlock
                               : Plan::Phase::kMissingBarrier;
    fin.root = static_cast<mpi::Rank>(rng.below(procs));
    plan.endsWithDeadlock = true;
    plan.phases.push_back(std::move(fin));
  }
  return plan;
}

mpi::Runtime::Program programFromPlan(const Plan& plan) {
  return [plan](Proc& self) -> sim::Task {
    const mpi::Rank me = self.rank();
    const mpi::Rank n = self.worldSize();
    bool dead = false;
    for (const auto& phase : plan.phases) {
      if (dead) break;
      switch (phase.kind) {
        case Plan::Phase::kRingBsend: {
          co_await self.bsend((me + 1) % n, 0, 4);
          co_await self.recv((me + n - 1) % n, 0);
          break;
        }
        case Plan::Phase::kPairIsendIrecv: {
          // Pair i <-> perm-partner via position parity.
          mpi::Rank partner = -1;
          for (std::size_t pos = 0; pos + 1 < phase.perm.size(); pos += 2) {
            if (phase.perm[pos] == me) partner = phase.perm[pos + 1];
            if (phase.perm[pos + 1] == me) partner = phase.perm[pos];
          }
          if (partner >= 0) {
            mpi::RequestId sreq = mpi::kNullRequest, rreq = mpi::kNullRequest;
            co_await self.isend(partner, 1, 8, &sreq);
            co_await self.irecv(partner, 1, &rreq);
            std::vector<mpi::RequestId> reqs;
            reqs.push_back(sreq);
            reqs.push_back(rreq);
            co_await self.waitall(reqs);
          }
          break;
        }
        case Plan::Phase::kBarrier:
          co_await self.barrier();
          break;
        case Plan::Phase::kAllreduce:
          co_await self.allreduce(8);
          break;
        case Plan::Phase::kWildcardGather: {
          if (me == phase.root) {
            for (std::int32_t k = 0; k < phase.fanOut; ++k) {
              co_await self.recv(mpi::kAnySource, 7);
            }
          } else {
            // The fanOut lowest non-root ranks send.
            mpi::Rank idx = me < phase.root ? me : me - 1;
            if (idx < phase.fanOut) co_await self.send(phase.root, 7, 4);
          }
          break;
        }
        case Plan::Phase::kProbeChain: {
          const mpi::Rank src = (phase.root + 1) % n;
          if (me == src) {
            co_await self.send(phase.root, 3, 16);
          } else if (me == phase.root) {
            mpi::Status st{};
            co_await self.probe(mpi::kAnySource, 3, &st);
            co_await self.recv(st.source, st.tag);
          }
          break;
        }
        case Plan::Phase::kRecvRecvDeadlock: {
          const mpi::Rank a = phase.root;
          const mpi::Rank b = (phase.root + 1) % n;
          if (me == a || me == b) {
            dead = true;
            co_await self.recv(me == a ? b : a, 99);
          }
          break;
        }
        case Plan::Phase::kMissingBarrier: {
          if (me == phase.root) {
            dead = true;
            co_await self.recv(mpi::kAnySource, 98);
          } else {
            co_await self.barrier();
          }
          break;
        }
      }
    }
    if (!dead) co_await self.finalize();
  };
}

struct OracleOutcome {
  std::vector<trace::LocalTs> state;
  std::vector<bool> blocked;
  std::vector<bool> finished;
};

OracleOutcome runFormal(const Plan& plan, const mpi::RuntimeConfig& mpiCfg) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpiCfg, plan.procs);
  Recorder recorder(runtime);
  runtime.runToCompletion(programFromPlan(plan));
  const trace::MatchedTrace trace = recorder.finish();
  waitstate::TransitionSystem ts(trace);
  ts.runToTerminal();
  OracleOutcome out;
  out.state = ts.state();
  out.blocked.resize(static_cast<std::size_t>(plan.procs), false);
  out.finished.resize(static_cast<std::size_t>(plan.procs), false);
  for (const auto proc : ts.blockedProcs())
    out.blocked[static_cast<std::size_t>(proc)] = true;
  for (trace::ProcId p = 0; p < plan.procs; ++p)
    out.finished[static_cast<std::size_t>(p)] = ts.finished(p);
  return out;
}

OracleOutcome runDistributed(const Plan& plan,
                             const mpi::RuntimeConfig& mpiCfg,
                             std::int32_t fanIn) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpiCfg, plan.procs);
  ToolConfig cfg;
  cfg.fanIn = fanIn;
  // Zero application-visible overhead so both oracle runs observe the same
  // execution (identical wildcard matching decisions).
  cfg.appEventCost = 0;
  cfg.overlay.appToLeaf.credits = 0;
  cfg.detectOnQuiescence = true;
  DistributedTool tool(engine, runtime, cfg);
  runtime.runToCompletion(programFromPlan(plan));

  OracleOutcome out;
  out.state.resize(static_cast<std::size_t>(plan.procs), 0);
  out.blocked.resize(static_cast<std::size_t>(plan.procs), false);
  out.finished.resize(static_cast<std::size_t>(plan.procs), false);
  for (trace::ProcId p = 0; p < plan.procs; ++p) {
    const auto& tracker = tool.tracker(tool.topology().nodeOfProc(p));
    out.state[static_cast<std::size_t>(p)] = tracker.current(p);
    out.blocked[static_cast<std::size_t>(p)] =
        tracker.waitConditions(p).blocked;
    out.finished[static_cast<std::size_t>(p)] = tracker.finishedProc(p);
  }
  return out;
}

class OracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleTest, DistributedTrackerMatchesFormalSystem) {
  const std::uint64_t seed = GetParam();
  support::Rng sizeRng(seed * 7919 + 13);
  const std::int32_t procs = 3 + static_cast<std::int32_t>(sizeRng.below(8));
  const Plan plan = makePlan(seed, procs);
  mpi::RuntimeConfig mpiCfg;
  mpiCfg.ranksPerNode = 4;

  const OracleOutcome formal = runFormal(plan, mpiCfg);
  for (const std::int32_t fanIn : {2, 3}) {
    const OracleOutcome dist = runDistributed(plan, mpiCfg, fanIn);
    EXPECT_EQ(dist.state, formal.state)
        << "seed " << seed << " fanIn " << fanIn << " procs " << procs;
    EXPECT_EQ(dist.blocked, formal.blocked)
        << "seed " << seed << " fanIn " << fanIn;
    EXPECT_EQ(dist.finished, formal.finished)
        << "seed " << seed << " fanIn " << fanIn;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, OracleTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace wst::must

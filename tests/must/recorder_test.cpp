// Recorder + formal-system analysis of recorded executions, and the harness.
#include <gtest/gtest.h>

#include "must/harness.hpp"
#include "must/recorder.hpp"
#include "waitstate/transition_system.hpp"
#include "workloads/stress.hpp"

namespace wst::must {
namespace {

using mpi::Proc;

TEST(Recorder, RecordsCleanRunAndAnalysisFinishes) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpi::RuntimeConfig{}, 3);
  Recorder recorder(runtime);
  runtime.runToCompletion([](Proc& self) -> sim::Task {
    if (self.rank() == 0) co_await self.send(1, 0, 8);
    if (self.rank() == 1) co_await self.recv(0, 0);
    co_await self.barrier();
    co_await self.finalize();
  });
  const trace::MatchedTrace trace = recorder.finish();
  // rank0: send+barrier+finalize; rank1: recv+barrier+finalize;
  // rank2: barrier+finalize.
  EXPECT_EQ(trace.totalOps(), 8u);
  waitstate::TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(Recorder, WildcardResolutionRecorded) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpi::RuntimeConfig{}, 3);
  Recorder recorder(runtime);
  runtime.runToCompletion([](Proc& self) -> sim::Task {
    if (self.rank() == 0) {
      mpi::Status st{};
      co_await self.recv(mpi::kAnySource, mpi::kAnyTag, &st);
      co_await self.recv(mpi::kAnySource, mpi::kAnyTag, &st);
    } else {
      co_await self.compute(
          self.rank() == 2 ? 10 * sim::kMicrosecond : 1 * sim::kMicrosecond);
      co_await self.send(0);
    }
    co_await self.finalize();
  });
  const trace::MatchedTrace trace = recorder.finish();
  // Rank 1 sent earlier; the first wildcard receive matched it.
  const auto firstMatch = trace.sendOf(trace::OpId{0, 0});
  ASSERT_TRUE(firstMatch.has_value());
  EXPECT_EQ(firstMatch->proc, 1);
  const auto secondMatch = trace.sendOf(trace::OpId{0, 1});
  ASSERT_TRUE(secondMatch.has_value());
  EXPECT_EQ(secondMatch->proc, 2);
}

TEST(Recorder, CommSplitGroupsRegistered) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpi::RuntimeConfig{}, 4);
  Recorder recorder(runtime);
  runtime.runToCompletion([](Proc& self) -> sim::Task {
    mpi::CommId sub = -1;
    co_await self.commSplit(mpi::kCommWorld, self.rank() % 2, self.rank(),
                            &sub);
    co_await self.barrier(sub);
    co_await self.finalize();
  });
  const trace::MatchedTrace trace = recorder.finish();
  // World + two split groups.
  EXPECT_EQ(trace.commGroup(mpi::kCommWorld).size(), 4u);
  EXPECT_EQ(trace.commGroup(1).size(), 2u);
  EXPECT_EQ(trace.commGroup(2).size(), 2u);
  waitstate::TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(Recorder, DeadlockedRunAnalyzesAsDeadlock) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, mpi::RuntimeConfig{}, 2);
  Recorder recorder(runtime);
  runtime.runToCompletion(workloads::recvRecvDeadlock());
  EXPECT_FALSE(runtime.allFinalized());
  const trace::MatchedTrace trace = recorder.finish();
  waitstate::TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_FALSE(ts.allFinished());
  const auto graph = ts.buildWaitForGraph();
  EXPECT_TRUE(graph.check().deadlock);
}

TEST(Harness, SlowdownComputedAgainstReference) {
  const auto program = workloads::cyclicExchange(
      workloads::StressParams{.iterations = 10});
  const auto ref = runReference(4, mpi::RuntimeConfig{}, program);
  ToolConfig cfg{.fanIn = 2};
  const auto tooled = runWithTool(4, mpi::RuntimeConfig{}, cfg, program);
  EXPECT_TRUE(ref.allFinalized);
  EXPECT_TRUE(tooled.allFinalized);
  EXPECT_GT(ref.completionTime, 0u);
  EXPECT_GE(tooled.completionTime, ref.completionTime);
  EXPECT_GE(tooled.slowdownOver(ref), 1.0);
  EXPECT_EQ(ref.appCalls, tooled.appCalls);
  EXPECT_GT(tooled.toolMessages, 0u);
}

TEST(Harness, ReferenceLastFinalizeMatchesCompletion) {
  const auto program = workloads::cyclicExchange(
      workloads::StressParams{.iterations = 5});
  const auto ref = runReference(4, mpi::RuntimeConfig{}, program);
  EXPECT_EQ(ref.completionTime, ref.lastFinalize);
}

}  // namespace
}  // namespace wst::must

// Multi-session serving (DESIGN.md §17): N independent scenarios
// co-scheduled over a shared pool must each produce a result byte-identical
// to running the session alone — same verdict, metrics JSON, DOT, trace
// hash — for any thread count, any slice size, any session cap, and with
// evictions of co-tenants happening mid-campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/interpreter.hpp"
#include "fuzz/scenario.hpp"
#include "must/serve.hpp"
#include "support/strings.hpp"

namespace wst::must {
namespace {

// Mirrors the `wst serve` session builder: the fuzz oracle's zero-overhead
// tool configuration around a generated scenario.
SessionSpec makeSpec(std::int32_t index, std::uint64_t seed) {
  const auto scenario =
      std::make_shared<const fuzz::Scenario>(fuzz::makeScenario(seed));
  SessionSpec spec;
  spec.name = support::format("s%03d-%016llx", index,
                              static_cast<unsigned long long>(seed));
  spec.procs = scenario->procs;
  spec.mpiConfig.ranksPerNode = 2;
  spec.tool.fanIn = scenario->fanIn;
  spec.tool.appEventCost = 0;
  spec.tool.overlay.appToLeaf.credits = 0;
  spec.tool.detectOnQuiescence = true;
  spec.tool.periodicDetection = scenario->periodic;
  spec.tool.detectionJitter = scenario->detectionJitter;
  spec.tool.detectionJitterSeed = scenario->seed + 1;
  spec.tool.maxPeriodicRounds = 64;
  spec.tool.consumedHistory = scenario->consumedHistory;
  spec.tool.overlay.intralayer.latency = scenario->latIntra;
  spec.tool.overlay.treeUp.latency = scenario->latUp;
  spec.tool.overlay.treeDown.latency = scenario->latDown;
  spec.program = fuzz::scenarioProgram(scenario);
  return spec;
}

std::vector<SessionSpec> eightSessions() {
  std::vector<SessionSpec> specs;
  for (std::int32_t i = 0; i < 8; ++i) {
    specs.push_back(makeSpec(i, static_cast<std::uint64_t>(i + 1)));
  }
  return specs;
}

void expectSameResult(const SessionResult& a, const SessionResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.name, b.name) << context;
  EXPECT_EQ(a.completed, b.completed) << context;
  EXPECT_EQ(a.evicted, b.evicted) << context;
  EXPECT_EQ(a.deadlock, b.deadlock) << context;
  EXPECT_EQ(a.detections, b.detections) << context;
  EXPECT_EQ(a.completionTime, b.completionTime) << context;
  EXPECT_EQ(a.traceHash, b.traceHash) << context;
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted) << context;
  EXPECT_EQ(a.metricsJson, b.metricsJson) << context;
  EXPECT_EQ(a.dot, b.dot) << context;
  EXPECT_EQ(a.summary, b.summary) << context;
}

TEST(Serve, EightSessionsMatchSoloRunsByteForByte) {
  const auto specs = eightSessions();
  ServeServer::Config cfg;
  cfg.threads = 1;
  cfg.sliceEvents = 64;  // force many scheduling rounds per session
  ServeServer server(cfg);
  for (const SessionSpec& spec : specs) server.submit(spec);
  server.run();

  ASSERT_EQ(server.results().size(), specs.size());
  bool sawDeadlock = false;
  bool sawClean = false;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SessionResult solo = runSessionSolo(specs[i]);
    expectSameResult(server.results()[i], solo, "session " + specs[i].name);
    EXPECT_TRUE(server.results()[i].completed);
    (server.results()[i].deadlock ? sawDeadlock : sawClean) = true;
  }
  // The seed mix must actually cover both verdicts, or the parity check
  // proves less than it claims.
  EXPECT_TRUE(sawDeadlock);
  EXPECT_TRUE(sawClean);
  EXPECT_EQ(server.admitted(), specs.size());
  EXPECT_EQ(server.completed(), specs.size());
  EXPECT_EQ(server.evicted(), 0u);
  EXPECT_GT(server.roundsRun(), 1u);
}

TEST(Serve, ResultsAreThreadCountAndCapInvariant) {
  const auto specs = eightSessions();
  const auto runWith = [&](std::int32_t threads, std::int32_t cap) {
    ServeServer::Config cfg;
    cfg.threads = threads;
    cfg.sessionCap = cap;
    cfg.sliceEvents = 64;
    ServeServer server(cfg);
    for (const SessionSpec& spec : specs) server.submit(spec);
    server.run();
    return server.results();
  };
  const auto base = runWith(1, 8);
  for (const auto& [threads, cap] :
       std::vector<std::pair<std::int32_t, std::int32_t>>{
           {4, 8}, {1, 3}, {4, 3}, {2, 1}}) {
    const auto other = runWith(threads, cap);
    ASSERT_EQ(other.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      expectSameResult(base[i], other[i],
                       support::format("threads=%d cap=%d session %zu",
                                       threads, cap, i));
    }
  }
}

TEST(Serve, EvictingOneSessionLeavesTheOthersUntouched) {
  const auto specs = eightSessions();
  const auto runWithEviction = [&](std::int32_t threads) {
    ServeServer::Config cfg;
    cfg.threads = threads;
    cfg.sliceEvents = 64;
    ServeServer server(cfg);
    for (const SessionSpec& spec : specs) server.submit(spec);
    server.evictAfterRounds(specs[2].name, 2);
    server.run();
    return server.results();
  };

  const auto results = runWithEviction(1);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i == 2) {
      EXPECT_TRUE(results[i].evicted);
      EXPECT_FALSE(results[i].completed);
      EXPECT_EQ(results[i].rounds, 2u);
      continue;
    }
    const SessionResult solo = runSessionSolo(specs[i]);
    expectSameResult(results[i], solo, "survivor " + specs[i].name);
  }

  // The evicted campaign is itself deterministic across thread counts.
  const auto threaded = runWithEviction(4);
  ASSERT_EQ(threaded.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expectSameResult(results[i], threaded[i],
                     "eviction thread-invariance session " +
                         std::to_string(i));
  }
}

TEST(Serve, StatusJsonCarriesSessionsTableAndCounters) {
  const auto specs = eightSessions();
  ServeServer::Config cfg;
  cfg.threads = 2;
  cfg.sessionCap = 4;
  ServeServer server(cfg);
  for (const SessionSpec& spec : specs) server.submit(spec);
  server.run();
  const std::string json = server.statusJson();
  EXPECT_NE(json.find("\"schema\": \"wst-serve-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"sessions\": ["), std::string::npos);
  for (const SessionSpec& spec : specs) {
    EXPECT_NE(json.find(spec.name), std::string::npos) << spec.name;
  }
  EXPECT_NE(json.find("\"admitted\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"completed\": 8"), std::string::npos);
  EXPECT_EQ(server.deadlocks(),
            static_cast<std::uint64_t>(
                std::count_if(server.results().begin(),
                              server.results().end(),
                              [](const SessionResult& r) {
                                return r.deadlock;
                              })));
}

}  // namespace
}  // namespace wst::must

// Soundness property (no false positives, paper §2: "we do not report false
// positives"): every process the tool ever reports as deadlocked — including
// reports from *mid-run* consistent-state snapshots — must indeed never
// reach MPI_Finalize.
//
// Random programs combine a genuinely deadlocking subset of ranks with ranks
// that keep communicating and computing; aggressive periodic detection takes
// snapshots while the healthy part is in full flight.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "must/harness.hpp"
#include "support/rng.hpp"

namespace wst::must {
namespace {

using mpi::Proc;

struct Scenario {
  std::int32_t procs = 8;
  std::int32_t deadlockers = 2;   // ranks [0, deadlockers) deadlock
  std::uint64_t seed = 0;
  int busyIterations = 40;
};

/// Ranks below `deadlockers` head-to-head deadlock in pairs (odd counts
/// leave the last one waiting on a silent partner); the rest run a mix of
/// pairwise exchanges, collectives over their own sub-communicator, and
/// compute, then finalize.
mpi::Runtime::Program scenarioProgram(const Scenario& sc) {
  return [sc](Proc& self) -> sim::Task {
    const mpi::Rank me = self.rank();
    // Comm_split is collective over MPI_COMM_WORLD: everyone participates
    // (deadlockers with their own color) before the deadlock happens.
    mpi::CommId sub = -1;
    co_await self.commSplit(mpi::kCommWorld,
                            /*color=*/me < sc.deadlockers ? 0 : 1,
                            /*key=*/me, &sub);
    if (me < sc.deadlockers) {
      const mpi::Rank partner = me ^ 1;
      if (partner < sc.deadlockers) {
        co_await self.recv(partner, 77);  // mutual: deadlock
      } else {
        co_await self.recv(mpi::kAnySource, 78);  // nobody sends tag 78
      }
      co_await self.finalize();
      co_return;
    }
    // Shared seed: every healthy rank draws the same pattern sequence so
    // collective calls align across the sub-communicator.
    support::Rng rng(sc.seed * 1000003);
    const mpi::Rank subSize =
        static_cast<mpi::Rank>(sc.procs - sc.deadlockers);
    const mpi::Rank subMe = me - sc.deadlockers;
    for (int i = 0; i < sc.busyIterations; ++i) {
      co_await self.compute(20 * sim::kMicrosecond);
      switch (rng.below(3)) {
        case 0: {
          const mpi::Rank right = (subMe + 1) % subSize;
          const mpi::Rank left = (subMe + subSize - 1) % subSize;
          co_await self.sendrecv(right, 1, 8, left, 1, nullptr, sub);
          break;
        }
        case 1:
          co_await self.allreduce(8, sub);
          break;
        case 2: {
          mpi::RequestId sreq = mpi::kNullRequest, rreq = mpi::kNullRequest;
          const mpi::Rank peer = (subMe + 1) % subSize;
          const mpi::Rank from = (subMe + subSize - 1) % subSize;
          co_await self.isend(peer, 2, 16, &sreq, sub);
          co_await self.irecv(from, 2, &rreq, sub);
          std::vector<mpi::RequestId> reqs{sreq, rreq};
          co_await self.waitall(reqs);
          break;
        }
      }
    }
    co_await self.barrier(sub);
    co_await self.finalize();
  };
}

class SoundnessTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(SoundnessTest, ReportedDeadlockedProcsNeverFinalize) {
  const auto [seed, batch] = GetParam();
  support::Rng rng(seed);
  Scenario sc;
  sc.procs = 6 + static_cast<std::int32_t>(rng.below(6));
  sc.deadlockers = 2 + static_cast<std::int32_t>(rng.below(2));
  sc.seed = seed;

  // NOTE on the program: healthy ranks pick communication patterns with a
  // *shared* seed so collective calls align (see scenarioProgram). To keep
  // that true we re-seed per rank with the scenario seed only.
  mpi::RuntimeConfig mpiCfg;
  mpiCfg.ranksPerNode = 4;
  ToolConfig toolCfg;
  toolCfg.fanIn = 2;
  // Aggressive periodic detection: snapshots land mid-flight.
  toolCfg.periodicDetection = 200 * sim::kMicrosecond;
  // The batched variant stages the wait-state trio with a flush window
  // spanning many snapshot periods, so requestConsistentState regularly
  // arrives while passSend/recvActive messages sit undelivered in staging —
  // the consistent-state ping-pong must bypass-flush them.
  toolCfg.batchWaitState = batch;
  toolCfg.waitStateBatch.flushInterval = 150 * sim::kMicrosecond;

  sim::Engine engine;
  mpi::Runtime runtime(engine, mpiCfg, sc.procs);
  DistributedTool tool(engine, runtime, toolCfg);
  runtime.start(scenarioProgram(sc));
  engine.run();

  // The deadlocking subset must be found...
  ASSERT_TRUE(tool.deadlockFound()) << "seed " << seed;
  const auto& deadlocked = tool.report()->check.deadlocked;
  EXPECT_FALSE(deadlocked.empty());
  // ...and every reported process must really be stuck (soundness).
  const auto unfinished = runtime.unfinishedRanks();
  const std::set<mpi::Rank> unfinishedSet(unfinished.begin(),
                                          unfinished.end());
  for (const trace::ProcId proc : deadlocked) {
    EXPECT_TRUE(unfinishedSet.contains(proc))
        << "seed " << seed << ": rank " << proc
        << " was reported deadlocked but finalized";
  }
  // All healthy ranks finish.
  EXPECT_EQ(unfinished.size(), static_cast<std::size_t>(sc.deadlockers))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenarios, SoundnessTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 26),
                       ::testing::Bool()));

// Deterministic drain check: with a flush window far longer than the run,
// staged wait-state messages are only ever delivered by bypass flushes (a
// consistent-state request/ping sharing the link) or the flush timer. The
// analysis must still terminate with the exact same verdict as the
// unbatched tool — if the double ping-pong failed to drain staged batches,
// the snapshot would be inconsistent or detection would hang on a
// never-quiescing link.
TEST(SoundnessBatching, SnapshotArrivesWithTrioStaged) {
  Scenario sc;
  sc.procs = 8;
  sc.deadlockers = 2;
  sc.seed = 7;

  mpi::RuntimeConfig mpiCfg;
  mpiCfg.ranksPerNode = 4;
  ToolConfig toolCfg;
  toolCfg.fanIn = 2;
  toolCfg.periodicDetection = 200 * sim::kMicrosecond;
  toolCfg.batchWaitState = true;
  toolCfg.waitStateBatch.flushInterval = 10 * sim::kMillisecond;

  sim::Engine engine;
  mpi::Runtime runtime(engine, mpiCfg, sc.procs);
  DistributedTool tool(engine, runtime, toolCfg);
  runtime.start(scenarioProgram(sc));
  engine.run();

  ASSERT_TRUE(tool.deadlockFound());
  const auto unfinished = runtime.unfinishedRanks();
  EXPECT_EQ(unfinished.size(), 2u);
  const std::set<mpi::Rank> unfinishedSet(unfinished.begin(),
                                          unfinished.end());
  for (const trace::ProcId proc : tool.report()->check.deadlocked) {
    EXPECT_TRUE(unfinishedSet.contains(proc));
  }
}

}  // namespace
}  // namespace wst::must

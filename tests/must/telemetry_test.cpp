// Live telemetry plane (DESIGN.md §16): per-round metric timeline, health
// beats + staleness detection, overhead self-accounting, and the streaming
// status endpoint. The acceptance witnesses:
//   - status JSON, Prometheus text, and timeline JSON are byte-identical
//     across parallel-engine worker counts;
//   - a silent (muted) node is flagged stale at the root within two beat
//     intervals and recovers when it reports again;
//   - the overhead buckets reconcile with the end-of-run metrics registry;
//   - disabled telemetry registers no extra instruments.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "must/harness.hpp"
#include "must/telemetry.hpp"
#include "support/metrics_timeline.hpp"
#include "support/strings.hpp"
#include "workloads/stress.hpp"

namespace wst::must {
namespace {

mpi::Runtime::Program stressProgram() {
  workloads::StressParams params;
  params.iterations = 30;
  return workloads::cyclicExchange(params);
}

struct TelemetryRun {
  std::string status;
  std::string prom;
  std::string timelineJson;
  std::uint64_t rewrites = 0;
  std::uint32_t staleNodes = 0;
  bool node0Stale = false;
  std::uint64_t staleFlags = 0;
  std::uint64_t wrapperNsSum = 0;   // per-proc bucket totals
  std::uint64_t creditNsSum = 0;
  std::uint64_t wrapperCounter = 0;  // registry mirrors of the same totals
  std::uint64_t creditCounter = 0;
  std::int64_t timelineWrapper = -1;  // counter/overhead/wrapper_ns in the
                                      // final reconstructed timeline point
  sim::Time endTime = 0;
  std::string metricsJson;
};

TelemetryRun runTelemetry(std::int32_t threads, tbon::NodeId muteNode = -1,
                          sim::Duration beatInterval = 500'000) {
  constexpr std::int32_t kProcs = 32;
  mpi::RuntimeConfig mpiCfg;
  ToolConfig cfg;
  cfg.telemetry = true;
  cfg.periodicDetection = 2'000'000;
  cfg.healthBeatInterval = beatInterval;
  cfg.muteHealthBeatNode = muteNode;

  sim::ParallelEngine engine(threads);
  mpi::Runtime runtime(engine, mpiCfg, kProcs);
  DistributedTool tool(engine, runtime, cfg);
  StatusWriter::Config swCfg;
  swCfg.interval = 1'000'000;  // in-memory only: path stays empty
  StatusWriter writer(engine, tool, swCfg);
  writer.start();
  runtime.runToCompletion(stressProgram());
  tool.finalizeTelemetry();
  writer.writeFinal();

  TelemetryRun out;
  out.status = writer.lastStatusJson();
  out.prom = writer.lastProm();
  out.timelineJson = tool.timeline()->toJson();
  out.rewrites = writer.rewrites();
  out.staleNodes = tool.staleNodeCount();
  out.node0Stale = !tool.healthTable().empty() && tool.healthTable()[0].stale;
  out.staleFlags = tool.metrics().counter("health/stale_flags").value();
  for (const DistributedTool::ProcOverhead& po : tool.procOverhead()) {
    out.wrapperNsSum += po.wrapperNs;
    out.creditNsSum += po.creditWaitNs;
  }
  out.wrapperCounter = tool.metrics().counter("overhead/wrapper_ns").value();
  out.creditCounter = tool.metrics().counter("overhead/credit_wait_ns").value();
  for (const auto& [key, value] : tool.timeline()->latest().series) {
    if (key == "counter/overhead/wrapper_ns") out.timelineWrapper = value;
  }
  out.endTime = engine.now();
  out.metricsJson = tool.metricsJson();
  return out;
}

TEST(Telemetry, StatusAndTimelineByteIdenticalAcrossThreadCounts) {
  const TelemetryRun base = runTelemetry(1);
  ASSERT_FALSE(base.status.empty());
  ASSERT_FALSE(base.prom.empty());
  EXPECT_NE(base.status.find("\"schema\": \"wst-status-v1\""),
            std::string::npos);
  EXPECT_NE(base.timelineJson.find("\"schema\": \"wst-timeline-v1\""),
            std::string::npos);
  EXPECT_NE(base.prom.find("wst_virtual_time_ns"), std::string::npos);
  EXPECT_GE(base.rewrites, 2u);  // at least one cadence render + the final
  for (const std::int32_t threads : {2, 4}) {
    const TelemetryRun other = runTelemetry(threads);
    EXPECT_EQ(base.status, other.status) << "threads=" << threads;
    EXPECT_EQ(base.prom, other.prom) << "threads=" << threads;
    EXPECT_EQ(base.timelineJson, other.timelineJson)
        << "threads=" << threads;
    EXPECT_EQ(base.rewrites, other.rewrites) << "threads=" << threads;
  }
}

TEST(Telemetry, SilentNodeFlaggedStaleWithinTwoBeatIntervals) {
  // Node 0 never beats. With the default staleness factor (2 intervals) the
  // root must flag it, and only it, by its second sweep.
  const sim::Duration interval = 500'000;
  const TelemetryRun muted = runTelemetry(1, /*muteNode=*/0, interval);
  EXPECT_EQ(muted.staleNodes, 1u);
  EXPECT_TRUE(muted.node0Stale);
  EXPECT_GE(muted.staleFlags, 1u);
  // The run is long enough that a flag later than 2 intervals would also
  // show up here; pin the transition count so the flag happened exactly
  // once (no flap) and the status document carries it.
  EXPECT_EQ(muted.staleFlags, 1u);
  EXPECT_NE(muted.status.find("\"stale_nodes\": 1"), std::string::npos);

  // All nodes reporting: nothing is stale, no flag transitions ever fire.
  const TelemetryRun healthy = runTelemetry(1, /*muteNode=*/-1, interval);
  EXPECT_EQ(healthy.staleNodes, 0u);
  EXPECT_EQ(healthy.staleFlags, 0u);
}

TEST(Telemetry, OverheadBucketsReconcileWithMetricsRegistry) {
  const TelemetryRun run = runTelemetry(1);
  // The per-proc buckets and their registry mirrors are updated together;
  // at end of run they must agree exactly.
  EXPECT_GT(run.wrapperNsSum, 0u);
  EXPECT_EQ(run.wrapperNsSum, run.wrapperCounter);
  EXPECT_EQ(run.creditNsSum, run.creditCounter);
  // No bucket can exceed the virtual run time per process.
  EXPECT_LE(run.wrapperNsSum,
            static_cast<std::uint64_t>(run.endTime) * 32);
  // The final timeline point reconstructs the same total as the registry
  // (ISSUE acceptance: "overhead numbers reconcile with the end-of-run
  // metrics JSON"), and the status document carries it verbatim.
  EXPECT_EQ(run.timelineWrapper,
            static_cast<std::int64_t>(run.wrapperCounter));
  EXPECT_NE(run.status.find(support::format(
                "\"wrapper_ns\": %llu",
                static_cast<unsigned long long>(run.wrapperCounter))),
            std::string::npos);
}

TEST(Telemetry, DisabledTelemetryRegistersNoInstruments) {
  constexpr std::int32_t kProcs = 32;
  mpi::RuntimeConfig mpiCfg;
  ToolConfig cfg;  // telemetry off, beats off
  const HarnessResult result =
      runWithTool(kProcs, mpiCfg, cfg, stressProgram());
  EXPECT_EQ(result.metricsJson.find("overhead/"), std::string::npos);
  EXPECT_EQ(result.metricsJson.find("health/"), std::string::npos);
}

TEST(Telemetry, BeatsDoNotChangeVerdictOrSchedule) {
  // Health beats ride the overlay as control messages; they must not
  // perturb the application schedule or the verdict.
  constexpr std::int32_t kProcs = 32;
  mpi::RuntimeConfig mpiCfg;
  ToolConfig plain;
  plain.periodicDetection = 2'000'000;
  const HarnessResult base =
      runWithTool(kProcs, mpiCfg, plain, stressProgram());
  ToolConfig beats = plain;
  beats.telemetry = true;
  beats.healthBeatInterval = 500'000;
  const HarnessResult beaty =
      runWithTool(kProcs, mpiCfg, beats, stressProgram());
  EXPECT_EQ(base.deadlockReported, beaty.deadlockReported);
  EXPECT_EQ(base.allFinalized, beaty.allFinalized);
  EXPECT_EQ(base.lastFinalize, beaty.lastFinalize);
  EXPECT_EQ(base.appCalls, beaty.appCalls);
}

}  // namespace
}  // namespace wst::must

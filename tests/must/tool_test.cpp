// End-to-end tests: simulated MPI application + TBON + distributed wait
// state tracking + consistent-state protocol + WFG check at the root.
#include <gtest/gtest.h>

#include "must/harness.hpp"
#include "support/strings.hpp"
#include "support/tracing.hpp"
#include "workloads/stress.hpp"

namespace wst::must {
namespace {

using mpi::Proc;
using mpi::Runtime;

mpi::RuntimeConfig smallWorld() {
  mpi::RuntimeConfig cfg;
  cfg.ranksPerNode = 4;
  return cfg;
}

TEST(Tool, CleanRunReportsNoDeadlock) {
  const auto result = runWithTool(
      4, smallWorld(), ToolConfig{.fanIn = 2},
      [](Proc& self) -> sim::Task {
        const mpi::Rank n = self.worldSize();
        const mpi::Rank right = (self.rank() + 1) % n;
        const mpi::Rank left = (self.rank() + n - 1) % n;
        for (int i = 0; i < 5; ++i) {
          co_await self.sendrecv(right, 0, 4, left, 0);
        }
        co_await self.barrier();
        co_await self.finalize();
      });
  EXPECT_TRUE(result.allFinalized);
  EXPECT_FALSE(result.deadlockReported);
}

TEST(Tool, UnsafeSendRingFlaggedByConservativeModel) {
  // Everyone sends right before receiving from the left: legal only if the
  // MPI buffers standard sends. The app completes (our runtime buffers) but
  // the conservative analysis reports the potential deadlock — the same
  // mechanism that flags 126.lammps in the paper (§6).
  const auto result = runWithTool(
      4, smallWorld(), ToolConfig{.fanIn = 2},
      [](Proc& self) -> sim::Task {
        const mpi::Rank n = self.worldSize();
        co_await self.send((self.rank() + 1) % n, 0, 4);
        co_await self.recv((self.rank() + n - 1) % n, 0);
        co_await self.finalize();
      });
  EXPECT_TRUE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 4u);

  // The implementation-faithful blocking model accepts the same program.
  ToolConfig faithful{.fanIn = 2};
  faithful.blockingModel = trace::BlockingModel::kImplementationFaithful;
  const auto relaxed = runWithTool(
      4, smallWorld(), faithful, [](Proc& self) -> sim::Task {
        const mpi::Rank n = self.worldSize();
        co_await self.send((self.rank() + 1) % n, 0, 4);
        co_await self.recv((self.rank() + n - 1) % n, 0);
        co_await self.finalize();
      });
  EXPECT_TRUE(relaxed.allFinalized);
  EXPECT_FALSE(relaxed.deadlockReported);
}

TEST(Tool, Figure2aRecvRecvDeadlockDetected) {
  const auto result = runWithTool(
      2, smallWorld(), ToolConfig{.fanIn = 2},
      [](Proc& self) -> sim::Task {
        co_await self.recv(1 - self.rank(), mpi::kAnyTag);
        co_await self.send(1 - self.rank());
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked,
            (std::vector<trace::ProcId>{0, 1}));
  EXPECT_EQ(result.report->check.cycle.size(), 2u);
}

TEST(Tool, Figure2bWildcardSendSendDeadlockDetected) {
  // Paper Figure 2(b): wildcard receives + barrier complete; the final
  // send-send pattern deadlocks under the conservative blocking model even
  // though the (buffering) MPI implementation lets the app terminate.
  mpi::RuntimeConfig mpiCfg = smallWorld();
  mpi::Runtime::Program program = [](Proc& self) -> sim::Task {
    if (self.rank() == 0) {
      co_await self.send(1);
      co_await self.barrier();
      co_await self.send(1);
      co_await self.recv(2);
    } else if (self.rank() == 1) {
      co_await self.recv(mpi::kAnySource);
      co_await self.recv(mpi::kAnySource);
      co_await self.barrier();
      co_await self.send(2);
      co_await self.recv(0);
    } else {
      co_await self.send(1);
      co_await self.barrier();
      co_await self.send(0);
      co_await self.recv(1);
    }
    co_await self.finalize();
  };
  const auto result = runWithTool(3, mpiCfg, ToolConfig{.fanIn = 2}, program);
  // The app itself terminates (buffered standard sends)...
  EXPECT_TRUE(result.allFinalized);
  // ...but the conservative analysis flags the send-send deadlock.
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 3u);
}

TEST(Tool, Figure2bManifestsWithoutBuffering) {
  mpi::RuntimeConfig mpiCfg = smallWorld();
  mpiCfg.bufferStandardSends = false;
  const auto result = runWithTool(
      3, mpiCfg, ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        if (self.rank() == 0) {
          co_await self.send(1);
          co_await self.barrier();
          co_await self.send(1);
          co_await self.recv(2);
        } else if (self.rank() == 1) {
          co_await self.recv(mpi::kAnySource);
          co_await self.recv(mpi::kAnySource);
          co_await self.barrier();
          co_await self.send(2);
          co_await self.recv(0);
        } else {
          co_await self.send(1);
          co_await self.barrier();
          co_await self.send(0);
          co_await self.recv(1);
        }
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);  // manifest deadlock
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 3u);
}

TEST(Tool, WildcardStressProducesQuadraticGraph) {
  // Paper Figure 10 workload: every rank posts Recv(ANY), nobody sends.
  const std::int32_t p = 12;
  const auto result = runWithTool(
      p, smallWorld(), ToolConfig{.fanIn = 4}, [](Proc& self) -> sim::Task {
        co_await self.recv(mpi::kAnySource, mpi::kAnyTag);
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(),
            static_cast<std::size_t>(p));
  EXPECT_EQ(result.report->check.arcCount,
            static_cast<std::uint64_t>(p) * (p - 1));
  EXPECT_GT(result.report->dotBytes, 0u);
  // Breakdown populated: synchronization and gather took virtual time.
  EXPECT_GT(result.report->times.synchronizationNs, 0u);
  EXPECT_GT(result.report->times.wfgGatherNs, 0u);
}

TEST(Tool, BarrierMissingRankDeadlockDetected) {
  const auto result = runWithTool(
      4, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        if (self.rank() == 3) {
          co_await self.recv(mpi::kAnySource);  // never enters the barrier
        } else {
          co_await self.barrier();
        }
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 4u);
}

TEST(Tool, CentralizedConfigurationDetectsToo) {
  const auto result = runWithTool(
      4, smallWorld(), DistributedTool::centralizedConfig(4),
      [](Proc& self) -> sim::Task {
        co_await self.recv((self.rank() + 1) % self.worldSize());
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 4u);
  EXPECT_FALSE(result.report->check.cycle.empty());
}

TEST(Tool, NonblockingWaitallDeadlockDetected) {
  const auto result = runWithTool(
      2, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        mpi::RequestId req = mpi::kNullRequest;
        co_await self.irecv(1 - self.rank(), 0, &req);
        co_await self.wait(req);  // nobody sends
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
}

TEST(Tool, SubCommunicatorDeadlockDetected) {
  const auto result = runWithTool(
      4, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        mpi::CommId sub = -1;
        co_await self.commSplit(mpi::kCommWorld, self.rank() % 2,
                                self.rank(), &sub);
        if (self.rank() % 2 == 0) {
          co_await self.barrier(sub);  // even group: fine
          co_await self.finalize();
        } else {
          if (self.rank() == 1) {
            co_await self.barrier(sub);  // odd group: rank 3 never joins
          } else {
            co_await self.recv(mpi::kAnySource, mpi::kAnyTag, nullptr, sub);
          }
          co_await self.finalize();
        }
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 2u);  // ranks 1 and 3
}

TEST(Tool, SendrecvRingRunsCleanly) {
  mpi::RuntimeConfig cfg = smallWorld();
  cfg.bufferStandardSends = false;
  const auto result = runWithTool(
      6, cfg, ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        const mpi::Rank n = self.worldSize();
        for (int i = 0; i < 3; ++i) {
          co_await self.sendrecv((self.rank() + 1) % n, 0, 8,
                                 (self.rank() + n - 1) % n, 0);
        }
        co_await self.finalize();
      });
  EXPECT_TRUE(result.allFinalized);
  EXPECT_FALSE(result.deadlockReported);
}

TEST(Tool, ProbeBasedConsumerRunsCleanly) {
  const auto result = runWithTool(
      2, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        if (self.rank() == 0) {
          for (int i = 0; i < 3; ++i) co_await self.send(1, i, 16);
        } else {
          mpi::Status st{};
          for (int i = 0; i < 3; ++i) {
            co_await self.probe(mpi::kAnySource, mpi::kAnyTag, &st);
            co_await self.recv(st.source, st.tag);
          }
        }
        co_await self.finalize();
      });
  EXPECT_TRUE(result.allFinalized);
  EXPECT_FALSE(result.deadlockReported);
}

TEST(Tool, PeriodicDetectionFindsDeadlockMidRun) {
  // Two ranks deadlock immediately; two others keep computing for a long
  // virtual time. Periodic detection finds the partial deadlock while the
  // rest of the app still runs (intermediate state, paper §3.2).
  ToolConfig cfg{.fanIn = 2};
  cfg.periodicDetection = 5 * sim::kMillisecond;
  const auto result = runWithTool(
      4, smallWorld(), cfg, [](Proc& self) -> sim::Task {
        if (self.rank() < 2) {
          co_await self.recv(1 - self.rank());
          co_await self.send(1 - self.rank());
        } else {
          for (int i = 0; i < 100; ++i) {
            co_await self.compute(1 * sim::kMillisecond);
            co_await self.sendrecv(self.rank() == 2 ? 3 : 2, 0, 4,
                                   self.rank() == 2 ? 3 : 2, 0);
          }
        }
        co_await self.finalize();
      });
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked,
            (std::vector<trace::ProcId>{0, 1}));
}

TEST(Tool, BackpressureSlowsButDoesNotBreakApp) {
  ToolConfig cfg{.fanIn = 2};
  cfg.overlay.appToLeaf.credits = 2;  // tiny buffers: heavy backpressure
  cfg.newOpCost = 5'000;
  const auto program = [](Proc& self) -> sim::Task {
    const mpi::Rank n = self.worldSize();
    for (int i = 0; i < 10; ++i) {
      co_await self.sendrecv((self.rank() + 1) % n, 0, 4,
                             (self.rank() + n - 1) % n, 0);
    }
    co_await self.finalize();
  };
  const auto ref = runReference(4, smallWorld(), program);
  const auto tooled = runWithTool(4, smallWorld(), cfg, program);
  EXPECT_TRUE(tooled.allFinalized);
  EXPECT_FALSE(tooled.deadlockReported);
  EXPECT_GT(tooled.slowdownOver(ref), 1.5);
}

TEST(Tool, CentralizedSlowerThanDistributedOnStress) {
  const auto program = [](Proc& self) -> sim::Task {
    const mpi::Rank n = self.worldSize();
    for (int i = 0; i < 100; ++i) {
      co_await self.sendrecv((self.rank() + 1) % n, 0, 4,
                             (self.rank() + n - 1) % n, 0);
      if (i % 10 == 9) co_await self.barrier();
    }
    co_await self.finalize();
  };
  const std::int32_t p = 16;
  ToolConfig dcfg{.fanIn = 4};
  dcfg.overlay.appToLeaf.credits = 16;
  ToolConfig ccfg = DistributedTool::centralizedConfig(p, dcfg);
  const auto ref = runReference(p, {}, program);
  const auto dist = runWithTool(p, {}, dcfg, program);
  const auto cent = runWithTool(p, {}, ccfg, program);
  EXPECT_TRUE(dist.allFinalized);
  EXPECT_TRUE(cent.allFinalized);
  EXPECT_GT(dist.slowdownOver(ref), 1.0);
  EXPECT_GT(cent.slowdownOver(ref), dist.slowdownOver(ref));
}

TEST(Tool, CollectiveMismatchFlaggedAtRoot) {
  const auto result = runWithTool(
      2, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        if (self.rank() == 0) {
          co_await self.barrier();
        } else {
          co_await self.allreduce();
        }
        co_await self.finalize();
      });
  // The runtime completes the (mismatched) wave; the tool's collective
  // matching at the root flags it.
  EXPECT_TRUE(result.allFinalized);
}

TEST(Tool, AnalysisStatisticsExposed) {
  const auto result = runWithTool(
      4, smallWorld(), ToolConfig{.fanIn = 2}, [](Proc& self) -> sim::Task {
        co_await self.barrier();
        co_await self.finalize();
      });
  EXPECT_TRUE(result.allFinalized);
  EXPECT_EQ(result.transitions, 4u);  // one barrier transition per rank
  EXPECT_GT(result.toolMessages, 0u);
  EXPECT_GE(result.maxWindow, 1u);
}

// --- Wait-state batching at stress scale -----------------------------------

TEST(ToolBatching, HalvesIntralayerChannelMessagesAtStressScale) {
  // Cyclic exchange at 256 processes with the exchange distance equal to the
  // fan-in: every rank's partner lives on the neighbouring tool node, so each
  // intralayer link multiplexes fanIn independent handshake chains — the
  // traffic pattern batching is built for. (At distance 1 each link carries a
  // single serial passSend/recvActive/ack chain and coalescing is bounded by
  // the round trip.)
  workloads::StressParams params;
  params.iterations = 30;
  params.neighborDistance = 4;
  const auto program = workloads::cyclicExchange(params);

  ToolConfig plain{.fanIn = 4};
  ToolConfig batched = plain;
  batched.batchWaitState = true;  // default waitStateBatch policy

  const auto base = runWithTool(256, mpi::RuntimeConfig{}, plain, program);
  const auto coalesced =
      runWithTool(256, mpi::RuntimeConfig{}, batched, program);

  // Identical analysis outcome.
  EXPECT_TRUE(base.allFinalized);
  EXPECT_TRUE(coalesced.allFinalized);
  EXPECT_EQ(base.deadlockReported, coalesced.deadlockReported);
  EXPECT_EQ(base.report.has_value(), coalesced.report.has_value());
  EXPECT_EQ(base.detections, coalesced.detections);

  // Batching changes the physical envelope count, not the logical traffic.
  EXPECT_EQ(base.intralayerMessages, coalesced.intralayerMessages);
  EXPECT_EQ(base.intralayerMessages, base.intralayerChannelMessages);
  EXPECT_GE(coalesced.intralayerMessages,
            2 * coalesced.intralayerChannelMessages);

  // Both runs expose the traffic in their metrics dumps.
  EXPECT_NE(base.metricsJson.find("overlay/channel_messages/intralayer"),
            std::string::npos);
  EXPECT_NE(coalesced.metricsJson.find("overlay/batch_occupancy"),
            std::string::npos);
}

TEST(ToolBatching, PreservesDeadlockVerdictAndWfgOutput) {
  // The unsafe ring without send buffering manifests a send-send deadlock;
  // batching must produce the identical report.
  workloads::StressParams params;
  params.iterations = 5;
  params.neighborDistance = 4;
  const auto program = workloads::unsafeCyclicExchange(params);
  mpi::RuntimeConfig world;
  world.bufferStandardSends = false;

  ToolConfig plain{.fanIn = 4};
  ToolConfig batched = plain;
  batched.batchWaitState = true;

  const auto base = runWithTool(256, world, plain, program);
  const auto coalesced = runWithTool(256, world, batched, program);

  EXPECT_FALSE(base.allFinalized);
  EXPECT_FALSE(coalesced.allFinalized);
  ASSERT_TRUE(base.deadlockReported);
  ASSERT_TRUE(coalesced.deadlockReported);
  EXPECT_EQ(base.report->summary, coalesced.report->summary);
  EXPECT_EQ(base.report->check.deadlocked, coalesced.report->check.deadlocked);
  EXPECT_EQ(base.report->check.cycle, coalesced.report->check.cycle);
  EXPECT_EQ(base.report->dotBytes, coalesced.report->dotBytes);
  EXPECT_EQ(base.report->html, coalesced.report->html);
}

TEST(Tool, DeadlockReportIncludesWaitHistoryWhenTraced) {
  // With the flight recorder attached, the HTML report gains a per-process
  // blocked-time attribution section and a tail of recorded events for every
  // deadlocked process.
  sim::Engine engine;
  support::Tracer::Config traceCfg;
  traceCfg.clock = [&engine] {
    return static_cast<std::uint64_t>(engine.now());
  };
  support::Tracer tracer(traceCfg);
  ToolConfig toolCfg{.fanIn = 4};
  toolCfg.tracer = &tracer;
  mpi::Runtime runtime(engine, smallWorld(), 8);
  runtime.setTracer(&tracer);
  DistributedTool tool(engine, runtime, toolCfg);
  runtime.runToCompletion(workloads::wildcardDeadlock());
  EXPECT_FALSE(runtime.allFinalized());
  ASSERT_TRUE(tool.report());
  ASSERT_TRUE(tool.report()->deadlock);
  const std::string before = tool.report()->html;
  EXPECT_EQ(before.find("Wait history"), std::string::npos);

  tool.attachTraceToReport();
  const std::string& html = tool.report()->html;
  EXPECT_NE(html.find("Wait history (flight recorder)"), std::string::npos);
  EXPECT_NE(html.find("ns blocked"), std::string::npos);
  EXPECT_NE(html.find("flight-recorder events"), std::string::npos);
  // Every deadlocked process gets its own section.
  for (const auto proc : tool.report()->check.deadlocked) {
    EXPECT_NE(html.find(support::format("<h3>Process %d", proc)),
              std::string::npos)
        << "missing wait history for process " << proc;
  }
  // The report still ends well-formed.
  EXPECT_NE(html.find("</body></html>"), std::string::npos);
}

TEST(Tool, AttachTraceToReportIsANoOpWithoutTracer) {
  sim::Engine engine;
  mpi::Runtime runtime(engine, smallWorld(), 8);
  DistributedTool tool(engine, runtime, ToolConfig{.fanIn = 4});
  runtime.runToCompletion(workloads::wildcardDeadlock());
  ASSERT_TRUE(tool.report());
  const std::string before = tool.report()->html;
  tool.attachTraceToReport();
  EXPECT_EQ(tool.report()->html, before);
  EXPECT_EQ(before.find("Wait history"), std::string::npos);
}

}  // namespace
}  // namespace wst::must

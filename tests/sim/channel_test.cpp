#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace wst::sim {
namespace {

TEST(Channel, DeliversAfterLatency) {
  Engine e;
  std::vector<std::pair<Time, int>> got;
  Channel<int> ch(e, ChannelConfig{.latency = 100, .perByte = 0, .credits = 0},
                  [&](int&& v) { got.emplace_back(e.now(), v); });
  ch.send(7, 0);
  e.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::pair<Time, int>{100, 7}));
}

TEST(Channel, PerByteCostAddsToLatency) {
  Engine e;
  Time arrival = 0;
  Channel<int> ch(e, ChannelConfig{.latency = 100, .perByte = 2, .credits = 0},
                  [&](int&&) { arrival = e.now(); });
  ch.send(1, 50);  // 100 + 2*50 = 200
  e.run();
  EXPECT_EQ(arrival, 200u);
}

TEST(Channel, NonOvertakingEvenWithDifferentSizes) {
  Engine e;
  std::vector<int> order;
  Channel<int> ch(e, ChannelConfig{.latency = 10, .perByte = 1, .credits = 0},
                  [&](int&& v) { order.push_back(v); });
  ch.send(1, 1000);  // would arrive at 1010
  ch.send(2, 0);     // naive arrival 10, clamped to 1010
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Channel, CountsTraffic) {
  Engine e;
  Channel<int> ch(e, ChannelConfig{}, [](int&&) {});
  ch.send(1, 10);
  ch.send(2, 20);
  EXPECT_EQ(ch.messagesSent(), 2u);
  EXPECT_EQ(ch.bytesSent(), 30u);
}

TEST(Channel, CreditsExhaustAndReturn) {
  Engine e;
  std::vector<int> got;
  Channel<int>* chp = nullptr;
  Channel<int> ch(e, ChannelConfig{.latency = 1, .perByte = 0, .credits = 2},
                  [&](int&& v) { got.push_back(v); });
  chp = &ch;
  EXPECT_TRUE(ch.hasCredit());
  ch.send(1, 0);
  ch.send(2, 0);
  EXPECT_FALSE(ch.hasCredit());

  int wokenWith = -1;
  ch.onceCredit([&] {
    wokenWith = 3;
    chp->send(3, 0);
  });
  e.run();
  EXPECT_EQ(got.size(), 2u);  // third message not sent yet

  ch.returnCredit();  // consumer finished processing one message
  EXPECT_EQ(wokenWith, 3);
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, CreditWaitersWakeInFifoOrder) {
  Engine e;
  Channel<int>* chp = nullptr;
  Channel<int> ch(e, ChannelConfig{.latency = 1, .perByte = 0, .credits = 1},
                  [](int&&) {});
  chp = &ch;
  ch.send(0, 0);
  std::vector<int> wakeOrder;
  // Each waiter consumes the credit it was woken for, as real producers do.
  ch.onceCredit([&] {
    wakeOrder.push_back(1);
    chp->send(1, 0);
  });
  ch.onceCredit([&] {
    wakeOrder.push_back(2);
    chp->send(2, 0);
  });
  ch.returnCredit();
  ch.returnCredit();
  EXPECT_EQ(wakeOrder, (std::vector<int>{1, 2}));
}

TEST(Channel, MovesPayload) {
  Engine e;
  std::string got;
  Channel<std::string> ch(e, ChannelConfig{},
                          [&](std::string&& s) { got = std::move(s); });
  ch.send(std::string(100, 'x'), 100);
  e.run();
  EXPECT_EQ(got.size(), 100u);
}

}  // namespace
}  // namespace wst::sim

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace wst::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) e.schedule(5, recurse);
  };
  e.schedule(0, recurse);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(e.now(), 45u);
}

TEST(Engine, QuiescenceHookRunsWhenQueueDrains) {
  Engine e;
  int hookRuns = 0;
  e.addQuiescenceHook([&] { ++hookRuns; });
  e.schedule(10, [] {});
  e.run();
  EXPECT_EQ(hookRuns, 1);
}

TEST(Engine, QuiescenceHookMayResumeTheRun) {
  Engine e;
  int hookRuns = 0;
  bool lateEventRan = false;
  e.addQuiescenceHook([&] {
    if (++hookRuns == 1) e.schedule(50, [&] { lateEventRan = true; });
  });
  e.schedule(10, [] {});
  e.run();
  EXPECT_TRUE(lateEventRan);
  EXPECT_EQ(hookRuns, 2);  // once to reschedule, once to terminate
  EXPECT_EQ(e.now(), 60u);
}

TEST(Engine, RemovedHookDoesNotRun) {
  Engine e;
  int runs = 0;
  const auto id = e.addQuiescenceHook([&] { ++runs; });
  e.removeQuiescenceHook(id);
  e.schedule(1, [] {});
  e.run();
  EXPECT_EQ(runs, 0);
}

TEST(Engine, HookAddedByRunningHookRunsNextRound) {
  Engine e;
  int firstRuns = 0;
  int addedRuns = 0;
  e.addQuiescenceHook([&] {
    if (++firstRuns == 1) {
      e.addQuiescenceHook([&] { ++addedRuns; });
      // Resume the run so a second quiescence round happens.
      e.schedule(5, [] {});
    }
  });
  e.schedule(1, [] {});
  e.run();
  // The added hook is not part of the snapshot of the round that added it,
  // but runs in the following round.
  EXPECT_EQ(firstRuns, 2);
  EXPECT_EQ(addedRuns, 1);
}

TEST(Engine, HookRemovedByEarlierHookStillRunsThisRound) {
  Engine e;
  int removedRuns = 0;
  std::size_t victimId = 0;
  e.addQuiescenceHook([&] { e.removeQuiescenceHook(victimId); });
  victimId = e.addQuiescenceHook([&] { ++removedRuns; });
  e.schedule(1, [] {});
  e.run();
  // Copy semantics: the snapshot taken at quiescence still contains the
  // victim, so it runs once — and never again after removal.
  EXPECT_EQ(removedRuns, 1);
}

TEST(Engine, HookMayRemoveItselfWhileRunning) {
  Engine e;
  int runs = 0;
  std::size_t id = 0;
  id = e.addQuiescenceHook([&] {
    ++runs;
    e.removeQuiescenceHook(id);
    e.schedule(5, [] {});  // force another quiescence round
  });
  e.schedule(1, [] {});
  e.run();
  EXPECT_EQ(runs, 1);
}

TEST(Engine, TraceHashIsReproducible) {
  const auto run = [] {
    Engine e;
    for (int i = 0; i < 20; ++i) {
      e.schedule(static_cast<Duration>((i * 7) % 5), [] {});
    }
    e.run();
    return e.traceHash();
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, TraceHashDistinguishesSchedules) {
  Engine a;
  a.schedule(10, [] {});
  a.run();
  Engine b;
  b.schedule(11, [] {});
  b.run();
  EXPECT_NE(a.traceHash(), b.traceHash());
}

TEST(Engine, RunSomeExecutesBoundedEvents) {
  Engine e;
  int ran = 0;
  for (int i = 0; i < 10; ++i) e.schedule(i, [&] { ++ran; });
  EXPECT_EQ(e.runSome(4), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_FALSE(e.empty());
  e.run();
  EXPECT_EQ(ran, 10);
}

TEST(Engine, ScheduleAtAbsoluteTime) {
  Engine e;
  Time seen = 0;
  e.scheduleAt(123, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 123u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule(1, [] {});
  e.run();
  EXPECT_EQ(e.eventsExecuted(), 7u);
}

}  // namespace
}  // namespace wst::sim

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/parallel_engine.hpp"

namespace wst::sim {
namespace {

TEST(ParallelEngine, SingleLpBehavesLikeSerialEngine) {
  ParallelEngine e(4);
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(10, [&] { order.push_back(2); });  // tie: insertion order
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.eventsExecuted(), 3u);
}

TEST(ParallelEngine, MatchesSerialEngineTraceHash) {
  const auto schedule = [](Scheduler& e) {
    for (int i = 0; i < 25; ++i) {
      e.schedule(static_cast<Duration>((i * 13) % 7), [] {});
    }
  };
  Engine serial;
  schedule(serial);
  serial.run();
  ParallelEngine par(4);
  schedule(par);
  par.run();
  // One LP: the parallel engine's trace must equal the serial engine's
  // (the per-LP fold adds the executed count, so compare the raw streams
  // via a second identically-scheduled parallel run instead).
  ParallelEngine par2(1);
  schedule(par2);
  par2.run();
  EXPECT_EQ(par.traceHash(), par2.traceHash());
  EXPECT_EQ(par.eventsExecuted(), serial.eventsExecuted());
}

TEST(ParallelEngine, CrossLpEventsExecuteInTimestampOrder) {
  for (const std::int32_t threads : {1, 2, 4}) {
    ParallelEngine e(threads);
    const LpId lpA = e.createLp();
    const LpId lpB = e.createLp();
    e.noteCrossLpLatency(10);
    std::vector<std::pair<LpId, Time>> log;
    // Ping-pong between two LPs; each hop schedules the next 10 ticks out.
    std::function<void(LpId, LpId, int)> hop = [&](LpId self, LpId peer,
                                                   int remaining) {
      log.emplace_back(self, e.now());
      if (remaining > 0) {
        e.scheduleOn(peer, e.now() + 10,
                     [&hop, peer, self, remaining] {
                       hop(peer, self, remaining - 1);
                     });
      }
    };
    e.scheduleOn(lpA, 0, [&] { hop(lpA, lpB, 6); });
    e.run();
    ASSERT_EQ(log.size(), 7u);
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].first, (i % 2 == 0) ? lpA : lpB);
      EXPECT_EQ(log[i].second, 10 * i);
    }
  }
}

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  const auto run = [](std::int32_t threads) {
    ParallelEngine e(threads);
    std::vector<LpId> lps;
    for (int i = 0; i < 4; ++i) lps.push_back(e.createLp());
    e.noteCrossLpLatency(5);
    std::atomic<std::uint64_t> executed{0};
    // Each LP runs a local event chain and periodically cross-schedules
    // onto its neighbour.
    for (std::size_t k = 0; k < lps.size(); ++k) {
      const LpId self = lps[k];
      const LpId next = lps[(k + 1) % lps.size()];
      std::shared_ptr<std::function<void(int)>> tick =
          std::make_shared<std::function<void(int)>>();
      *tick = [&e, &executed, self, next, tick](int remaining) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (remaining == 0) return;
        if (remaining % 3 == 0) {
          e.scheduleOn(next, e.now() + 5,
                       [tick, remaining] { (*tick)(remaining - 1); });
        } else {
          e.schedule(2, [tick, remaining] { (*tick)(remaining - 1); });
        }
      };
      e.scheduleOn(self, 0, [tick] { (*tick)(30); });
    }
    e.run();
    return std::pair{e.traceHash(), e.eventsExecuted()};
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(8), base);
}

TEST(ParallelEngine, QuiescenceHooksRunSeriallyBetweenRounds) {
  ParallelEngine e(4);
  const LpId lp1 = e.createLp();
  e.noteCrossLpLatency(3);
  int hookRuns = 0;
  bool resumed = false;
  e.addQuiescenceHook([&] {
    if (++hookRuns == 1) {
      // Hooks run outside any LP; sends are stamped with the external
      // sequence and stay deterministic.
      e.scheduleOn(lp1, e.now() + 1, [&] { resumed = true; });
    }
  });
  e.scheduleOn(lp1, 4, [] {});
  e.run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(hookRuns, 2);
}

TEST(ParallelEngine, ChannelRoutesDeliveryToConsumerLp) {
  ParallelEngine e(2);
  const LpId producer = e.createLp();
  const LpId consumer = e.createLp();
  e.noteCrossLpLatency(7);
  Channel<int> chan(e, ChannelConfig{.latency = 7, .perByte = 0, .credits = 0});
  chan.setEndpoints(producer, consumer);
  LpId deliveredOn = -1;
  Time deliveredAt = 0;
  int value = 0;
  chan.setDeliver([&](int&& v) {
    deliveredOn = e.currentLp();
    deliveredAt = e.now();
    value = v;
  });
  e.scheduleOn(producer, 1, [&] { chan.sendUnthrottled(42, 4); });
  e.run();
  EXPECT_EQ(deliveredOn, consumer);
  EXPECT_EQ(deliveredAt, 8u);
  EXPECT_EQ(value, 42);
}

TEST(ParallelEngine, StatsCountRoundsAndCrossLpTraffic) {
  ParallelEngine e(2);
  const LpId lp1 = e.createLp();
  const LpId lp2 = e.createLp();
  e.noteCrossLpLatency(5);
  e.scheduleOn(lp1, 0, [&] {
    e.scheduleOn(lp2, e.now() + 5, [] {});
  });
  e.run();
  EXPECT_GE(e.stats().rounds, 1u);
  // External setup event + one cross-LP send.
  EXPECT_GE(e.stats().crossLpEvents, 2u);
  EXPECT_GE(e.stats().mailboxHighWater, 1u);
  EXPECT_EQ(e.lookahead(), 5);
}

// A small mixed workload: `lpCount` LPs each run a local chain and
// cross-schedule onto a neighbour every third step. Returns (traceHash,
// eventsExecuted) so callers can compare layouts.
std::pair<std::uint64_t, std::uint64_t> runMeshWorkload(ParallelEngine& e,
                                                       int lpCount) {
  std::vector<LpId> lps;
  for (int i = 1; i < lpCount; ++i) lps.push_back(e.createLp());
  lps.push_back(kMainLp);
  e.noteCrossLpLatency(5);
  for (std::size_t k = 0; k < lps.size(); ++k) {
    const LpId self = lps[k];
    const LpId next = lps[(k + 1) % lps.size()];
    std::shared_ptr<std::function<void(int)>> tick =
        std::make_shared<std::function<void(int)>>();
    *tick = [&e, self, next, tick](int remaining) {
      if (remaining == 0) return;
      if (remaining % 3 == 0) {
        e.scheduleOn(next, e.now() + 5,
                     [tick, remaining] { (*tick)(remaining - 1); });
      } else {
        e.schedule(2, [tick, remaining] { (*tick)(remaining - 1); });
      }
    };
    e.scheduleOn(self, 0, [tick] { (*tick)(24); });
  }
  e.run();
  return {e.traceHash(), e.eventsExecuted()};
}

TEST(ParallelEngine, ShardCountClampsToLpCount) {
  // 8 threads but only 3 LPs: extra threads would just spin at the barrier,
  // so the engine must not spawn them — and the results must still match a
  // serial run exactly.
  ParallelEngine wide(8);
  const auto wideResult = runMeshWorkload(wide, 3);
  EXPECT_EQ(wide.shardCount(), 3);
  EXPECT_EQ(wide.stats().workerEvents.size(), 3u);

  ParallelEngine narrow(1);
  const auto narrowResult = runMeshWorkload(narrow, 3);
  EXPECT_EQ(narrow.shardCount(), 1);
  EXPECT_EQ(wideResult, narrowResult);
}

TEST(ParallelEngine, OversubscriptionIsDeterministic) {
  // Far more threads than this machine has cores: the barrier backoff must
  // keep every shard making progress and the trace must not change.
  ParallelEngine base(1);
  const auto expected = runMeshWorkload(base, 6);
  ParallelEngine oversubscribed(16);
  EXPECT_EQ(runMeshWorkload(oversubscribed, 6), expected);
  EXPECT_EQ(oversubscribed.shardCount(), 6);
}

TEST(ParallelEngine, TraceInvariantUnderEveryShardLayout) {
  // 5 LPs under threads 1..8 exercise every distinct LP-to-shard layout
  // (1..5 shards, including the uneven ones). The mail sort key carries no
  // shard component, so every layout must produce the same trace.
  ParallelEngine base(1);
  const auto expected = runMeshWorkload(base, 5);
  for (std::int32_t threads = 2; threads <= 8; ++threads) {
    ParallelEngine e(threads);
    EXPECT_EQ(runMeshWorkload(e, 5), expected) << "threads=" << threads;
    EXPECT_EQ(e.shardCount(), std::min<std::int32_t>(threads, 5));
  }
}

TEST(ParallelEngine, WorkerEventsSumToEventsExecuted) {
  ParallelEngine e(4);
  runMeshWorkload(e, 5);
  const ParallelEngine::Stats stats = e.stats();
  ASSERT_EQ(stats.workerEvents.size(),
            static_cast<std::size_t>(e.shardCount()));
  std::uint64_t sum = 0;
  for (const std::uint64_t perShard : stats.workerEvents) sum += perShard;
  EXPECT_EQ(sum, e.eventsExecuted());
  // The layout is fixed, so the per-shard split is reproducible too.
  ParallelEngine again(4);
  runMeshWorkload(again, 5);
  EXPECT_EQ(again.stats().workerEvents, stats.workerEvents);
}

TEST(ParallelEngine, ExternalSchedulingBetweenRunsResumes) {
  // Sends from outside any LP are staged while the engine is idle and must
  // survive a run boundary: schedule, run, schedule again, run again.
  ParallelEngine e(4);
  const LpId lp1 = e.createLp();
  e.noteCrossLpLatency(3);
  std::vector<int> order;
  e.scheduleOn(lp1, 2, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  const std::uint64_t afterFirst = e.eventsExecuted();
  // `order` stays lp1-only: same-round events on different LPs execute
  // concurrently, so the main-LP event reports through an atomic instead.
  e.scheduleOn(lp1, e.now() + 4, [&] { order.push_back(2); });
  e.scheduleOn(lp1, e.now() + 6, [&] { order.push_back(3); });
  std::atomic<bool> mainRan{false};
  e.scheduleAt(e.now() + 5, [&] { mainRan = true; });  // main LP
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(mainRan.load());
  EXPECT_EQ(e.eventsExecuted(), afterFirst + 3);
}

TEST(ParallelEngine, PinnedThreadsProduceIdenticalTrace) {
  // Pinning is a best-effort perf knob; it must never change results.
  ParallelEngine plain(4);
  const auto expected = runMeshWorkload(plain, 4);
  ParallelEngine pinned(4, /*minLookahead=*/0, /*pinThreads=*/true);
  EXPECT_EQ(runMeshWorkload(pinned, 4), expected);
}

}  // namespace
}  // namespace wst::sim

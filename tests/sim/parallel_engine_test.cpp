#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/channel.hpp"
#include "sim/parallel_engine.hpp"

namespace wst::sim {
namespace {

TEST(ParallelEngine, SingleLpBehavesLikeSerialEngine) {
  ParallelEngine e(4);
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(10, [&] { order.push_back(2); });  // tie: insertion order
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.eventsExecuted(), 3u);
}

TEST(ParallelEngine, MatchesSerialEngineTraceHash) {
  const auto schedule = [](Scheduler& e) {
    for (int i = 0; i < 25; ++i) {
      e.schedule(static_cast<Duration>((i * 13) % 7), [] {});
    }
  };
  Engine serial;
  schedule(serial);
  serial.run();
  ParallelEngine par(4);
  schedule(par);
  par.run();
  // One LP: the parallel engine's trace must equal the serial engine's
  // (the per-LP fold adds the executed count, so compare the raw streams
  // via a second identically-scheduled parallel run instead).
  ParallelEngine par2(1);
  schedule(par2);
  par2.run();
  EXPECT_EQ(par.traceHash(), par2.traceHash());
  EXPECT_EQ(par.eventsExecuted(), serial.eventsExecuted());
}

TEST(ParallelEngine, CrossLpEventsExecuteInTimestampOrder) {
  for (const std::int32_t threads : {1, 2, 4}) {
    ParallelEngine e(threads);
    const LpId lpA = e.createLp();
    const LpId lpB = e.createLp();
    e.noteCrossLpLatency(10);
    std::vector<std::pair<LpId, Time>> log;
    // Ping-pong between two LPs; each hop schedules the next 10 ticks out.
    std::function<void(LpId, LpId, int)> hop = [&](LpId self, LpId peer,
                                                   int remaining) {
      log.emplace_back(self, e.now());
      if (remaining > 0) {
        e.scheduleOn(peer, e.now() + 10,
                     [&hop, peer, self, remaining] {
                       hop(peer, self, remaining - 1);
                     });
      }
    };
    e.scheduleOn(lpA, 0, [&] { hop(lpA, lpB, 6); });
    e.run();
    ASSERT_EQ(log.size(), 7u);
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].first, (i % 2 == 0) ? lpA : lpB);
      EXPECT_EQ(log[i].second, 10 * i);
    }
  }
}

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  const auto run = [](std::int32_t threads) {
    ParallelEngine e(threads);
    std::vector<LpId> lps;
    for (int i = 0; i < 4; ++i) lps.push_back(e.createLp());
    e.noteCrossLpLatency(5);
    std::atomic<std::uint64_t> executed{0};
    // Each LP runs a local event chain and periodically cross-schedules
    // onto its neighbour.
    for (std::size_t k = 0; k < lps.size(); ++k) {
      const LpId self = lps[k];
      const LpId next = lps[(k + 1) % lps.size()];
      std::shared_ptr<std::function<void(int)>> tick =
          std::make_shared<std::function<void(int)>>();
      *tick = [&e, &executed, self, next, tick](int remaining) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (remaining == 0) return;
        if (remaining % 3 == 0) {
          e.scheduleOn(next, e.now() + 5,
                       [tick, remaining] { (*tick)(remaining - 1); });
        } else {
          e.schedule(2, [tick, remaining] { (*tick)(remaining - 1); });
        }
      };
      e.scheduleOn(self, 0, [tick] { (*tick)(30); });
    }
    e.run();
    return std::pair{e.traceHash(), e.eventsExecuted()};
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(8), base);
}

TEST(ParallelEngine, QuiescenceHooksRunSeriallyBetweenRounds) {
  ParallelEngine e(4);
  const LpId lp1 = e.createLp();
  e.noteCrossLpLatency(3);
  int hookRuns = 0;
  bool resumed = false;
  e.addQuiescenceHook([&] {
    if (++hookRuns == 1) {
      // Hooks run outside any LP; sends are stamped with the external
      // sequence and stay deterministic.
      e.scheduleOn(lp1, e.now() + 1, [&] { resumed = true; });
    }
  });
  e.scheduleOn(lp1, 4, [] {});
  e.run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(hookRuns, 2);
}

TEST(ParallelEngine, ChannelRoutesDeliveryToConsumerLp) {
  ParallelEngine e(2);
  const LpId producer = e.createLp();
  const LpId consumer = e.createLp();
  e.noteCrossLpLatency(7);
  Channel<int> chan(e, ChannelConfig{.latency = 7, .perByte = 0, .credits = 0});
  chan.setEndpoints(producer, consumer);
  LpId deliveredOn = -1;
  Time deliveredAt = 0;
  int value = 0;
  chan.setDeliver([&](int&& v) {
    deliveredOn = e.currentLp();
    deliveredAt = e.now();
    value = v;
  });
  e.scheduleOn(producer, 1, [&] { chan.sendUnthrottled(42, 4); });
  e.run();
  EXPECT_EQ(deliveredOn, consumer);
  EXPECT_EQ(deliveredAt, 8u);
  EXPECT_EQ(value, 42);
}

TEST(ParallelEngine, StatsCountRoundsAndCrossLpTraffic) {
  ParallelEngine e(2);
  const LpId lp1 = e.createLp();
  const LpId lp2 = e.createLp();
  e.noteCrossLpLatency(5);
  e.scheduleOn(lp1, 0, [&] {
    e.scheduleOn(lp2, e.now() + 5, [] {});
  });
  e.run();
  EXPECT_GE(e.stats().rounds, 1u);
  // External setup event + one cross-LP send.
  EXPECT_GE(e.stats().crossLpEvents, 2u);
  EXPECT_GE(e.stats().mailboxHighWater, 1u);
  EXPECT_EQ(e.lookahead(), 5);
}

}  // namespace
}  // namespace wst::sim

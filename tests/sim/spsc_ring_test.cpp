// The cross-shard mail plane of the parallel engine: the SPSC ring and the
// sense-reversing barrier. The concurrent tests double as the TSan targets
// for the lock-free paths (CI runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/barrier.hpp"
#include "sim/spsc_ring.hpp"

namespace wst::sim::detail {
namespace {

TEST(SpscRing, FifoOrderAcrossBlockBoundaries) {
  SpscRing<int> ring(/*initialCapacity=*/4);  // force several growth steps
  for (int i = 0; i < 1000; ++i) ring.push(i);
  EXPECT_EQ(ring.sizeEstimate(), 1000u);
  int out = -1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, InterleavedPushPopReusesNothingUnpublished) {
  SpscRing<int> ring(2);
  int out = -1;
  EXPECT_FALSE(ring.pop(out));
  for (int round = 0; round < 100; ++round) {
    ring.push(2 * round);
    ring.push(2 * round + 1);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 2 * round);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 2 * round + 1);
    EXPECT_FALSE(ring.pop(out));
  }
}

TEST(SpscRing, DrainIntoAppendsEverythingPublished) {
  SpscRing<int> ring(8);
  std::vector<int> sink{-1};  // drain must append, not clear
  for (int i = 0; i < 50; ++i) ring.push(i);
  ring.drainInto(sink);
  ASSERT_EQ(sink.size(), 51u);
  EXPECT_EQ(sink.front(), -1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sink[static_cast<std::size_t>(i) + 1], i);
}

TEST(SpscRing, MoveOnlyPayloadsMoveThrough) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 20; ++i) ring.push(std::make_unique<int>(i));
  std::unique_ptr<int> out;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ring.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, i);
  }
}

// True concurrency: one producer, one consumer, no external synchronization
// beyond the ring itself. Values must arrive complete, in order, exactly
// once. Under TSan this is the witness that push/pop publication is sound.
TEST(SpscRing, ConcurrentProducerConsumerPreservesOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(16);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t spins = 0;
  while (expected < kCount) {
    std::uint64_t out = 0;
    if (ring.pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else if (++spins % 1024 == 0) {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpinBarrier, OrdersWritesAcrossParticipants) {
  constexpr std::int32_t kThreads = 4;
  constexpr int kRounds = 500;
  SpinBarrier barrier(kThreads);
  // Plain (non-atomic) per-thread counters: each round, every thread bumps
  // its own slot, crosses the barrier, and verifies every *other* slot
  // reached the round count. Any missing happens-before edge trips TSan
  // and (likely) the assertion.
  std::vector<std::int64_t> slots(static_cast<std::size_t>(kThreads) * 16, 0);
  std::atomic<int> failures{0};
  auto body = [&](std::int32_t self) {
    bool sense = false;
    for (int round = 1; round <= kRounds; ++round) {
      slots[static_cast<std::size_t>(self) * 16] = round;
      barrier.arriveAndWait(sense);
      for (std::int32_t peer = 0; peer < kThreads; ++peer) {
        if (slots[static_cast<std::size_t>(peer) * 16] < round) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      barrier.arriveAndWait(sense);
    }
  };
  std::vector<std::thread> threads;
  for (std::int32_t t = 1; t < kThreads; ++t) {
    threads.emplace_back(body, t);
  }
  body(0);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SpinBarrier, SurvivesOversubscription) {
  // More participants than this machine can run at once: the yield/sleep
  // backoff must keep everyone making progress.
  const std::int32_t participants =
      static_cast<std::int32_t>(std::thread::hardware_concurrency()) * 4 + 4;
  SpinBarrier barrier(participants);
  std::atomic<std::int64_t> sum{0};
  auto body = [&] {
    bool sense = false;
    for (int round = 0; round < 50; ++round) {
      sum.fetch_add(1, std::memory_order_relaxed);
      barrier.arriveAndWait(sense);
    }
  };
  std::vector<std::thread> threads;
  for (std::int32_t t = 1; t < participants; ++t) threads.emplace_back(body);
  body();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(participants) * 50);
}

}  // namespace
}  // namespace wst::sim::detail

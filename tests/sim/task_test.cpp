#include <gtest/gtest.h>

#include <vector>

#include "sim/awaitables.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace wst::sim {
namespace {

Task simpleBody(int& out) {
  out = 42;
  co_return;
}

TEST(Task, RunsOnStart) {
  int out = 0;
  Task t = simpleBody(out);
  EXPECT_EQ(out, 0);  // initial_suspend: nothing ran yet
  t.start();
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(t.done());
}

Task delayedBody(Engine& e, std::vector<Time>& stamps) {
  stamps.push_back(e.now());
  co_await Delay{e, 100};
  stamps.push_back(e.now());
  co_await Delay{e, 50};
  stamps.push_back(e.now());
}

TEST(Task, DelaySuspendsAndResumesAtVirtualTime) {
  Engine e;
  std::vector<Time> stamps;
  Task t = delayedBody(e, stamps);
  t.start();
  EXPECT_EQ(stamps.size(), 1u);  // suspended at first delay
  e.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], 100u);
  EXPECT_EQ(stamps[2], 150u);
  EXPECT_TRUE(t.done());
}

Task child(Engine& e, std::vector<int>& log) {
  log.push_back(1);
  co_await Delay{e, 10};
  log.push_back(2);
}

Task parent(Engine& e, std::vector<int>& log) {
  log.push_back(0);
  co_await child(e, log);
  log.push_back(3);
  co_await child(e, log);
  log.push_back(4);
}

TEST(Task, NestedTasksResumeParent) {
  Engine e;
  std::vector<int> log;
  Task t = parent(e, log);
  t.start();
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 1, 2, 4}));
  EXPECT_TRUE(t.done());
}

Task gateWaiter(Gate& g, bool& resumed) {
  co_await g.wait();
  resumed = true;
}

TEST(Gate, OpenResumesWaiter) {
  Gate g;
  bool resumed = false;
  Task t = gateWaiter(g, resumed);
  t.start();
  EXPECT_FALSE(resumed);
  g.open();
  EXPECT_TRUE(resumed);
}

TEST(Gate, OpenBeforeWaitDoesNotSuspend) {
  Gate g;
  g.open();
  bool resumed = false;
  Task t = gateWaiter(g, resumed);
  t.start();
  EXPECT_TRUE(resumed);
}

TEST(Gate, CallbackRunsOnOpen) {
  Gate g;
  int calls = 0;
  g.onOpen([&] { ++calls; });
  EXPECT_EQ(calls, 0);
  g.open();
  EXPECT_EQ(calls, 1);
}

TEST(Gate, CallbackRunsImmediatelyIfAlreadyOpen) {
  Gate g;
  g.open();
  int calls = 0;
  g.onOpen([&] { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Gate, ResetAllowsReuse) {
  Gate g;
  g.open();
  g.reset();
  EXPECT_FALSE(g.isOpen());
  bool resumed = false;
  Task t = gateWaiter(g, resumed);
  t.start();
  EXPECT_FALSE(resumed);
  g.open();
  EXPECT_TRUE(resumed);
}

TEST(Task, DestroyWhileSuspendedIsSafe) {
  Engine e;
  std::vector<Time> stamps;
  {
    Task t = delayedBody(e, stamps);
    t.start();
    // t destroyed while suspended on the delay.
  }
  // The scheduled resume would be a use-after-free if it ran; the engine
  // event still exists but we never run it — mirrors how a deadlocked run
  // tears down: nothing resumes destroyed frames after the engine stops.
  EXPECT_EQ(stamps.size(), 1u);
}

}  // namespace
}  // namespace wst::sim

#include "support/metrics.hpp"

#include <gtest/gtest.h>

namespace wst::support {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("overlay/messages");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(registry.counter("overlay/messages").value(), 42u);
}

TEST(Metrics, GaugeTracksMax) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("queue/depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);
}

TEST(Metrics, HistogramBucketsByLog2) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("batch/occupancy");
  h.record(0);  // bucket 0
  h.record(1);  // bucket 1
  h.record(2);  // bucket 2
  h.record(3);  // bucket 2
  h.record(4);  // bucket 3
  h.record(7);  // bucket 3
  h.record(8);  // bucket 4
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_NEAR(h.mean(), 25.0 / 7.0, 1e-9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.bucketEnd(), 5u);
}

TEST(Metrics, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.bucketEnd(), 0u);
}

TEST(Metrics, StableReferencesAcrossRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("a");
  for (int i = 0; i < 100; ++i) {
    registry.counter("name" + std::to_string(i));
  }
  first.add(5);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_EQ(&registry.counter("a"), &first);
}

TEST(Metrics, JsonDumpIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b").add(2);
  registry.counter("a").add(1);
  registry.gauge("depth").set(9);
  registry.histogram("occ").record(3);
  const std::string json = registry.toJson();
  EXPECT_EQ(json,
            "{\"counters\": {\"a\": 1, \"b\": 2}, "
            "\"gauges\": {\"depth\": {\"value\": 9, \"max\": 9}}, "
            "\"histograms\": {\"occ\": {\"count\": 1, \"sum\": 3, "
            "\"min\": 3, \"max\": 3, \"mean\": 3.000, "
            "\"p50\": 3.000, \"p99\": 3.000, "
            "\"buckets\": [0, 0, 1]}}}");
}

TEST(Metrics, JsonEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.toJson(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
}

}  // namespace
}  // namespace wst::support

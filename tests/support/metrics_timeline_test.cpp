// MetricsTimeline: snapshot/delta arithmetic, ring eviction into the base
// snapshot, JSON/Prometheus serialization (DESIGN.md §16).
#include "support/metrics_timeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/metrics.hpp"

namespace wst::support {
namespace {

std::int64_t valueOf(const MetricsSnapshot& snap, const std::string& key) {
  for (const auto& [k, v] : snap.series) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing series " << key;
  return 0;
}

bool hasKey(const MetricsSnapshot& snap, const std::string& key) {
  for (const auto& [k, v] : snap.series) {
    if (k == key) return true;
  }
  return false;
}

TEST(MetricsTimeline, DeltasOnlyStoreChangedSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  MetricsTimeline tl(reg);

  a.add(5);
  b.add(2);
  tl.capture(100, "first");
  a.add(3);  // b unchanged
  tl.capture(200, "second");

  ASSERT_EQ(tl.points().size(), 2u);
  // First point: both series are new, both appear as deltas from zero.
  EXPECT_EQ(tl.points()[0].deltas.size(), 2u);
  // Second point: only `a` moved.
  ASSERT_EQ(tl.points()[1].deltas.size(), 1u);
  EXPECT_EQ(tl.points()[1].deltas[0].first, "counter/a");
  EXPECT_EQ(tl.points()[1].deltas[0].second, 3);
  EXPECT_EQ(tl.points()[1].timeNs, 200);
  EXPECT_EQ(tl.points()[1].label, "second");
}

TEST(MetricsTimeline, AtReconstructsEverySnapshotExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  MetricsTimeline tl(reg);

  for (int i = 1; i <= 5; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    g.set(10 - i);
    tl.capture(i * 100, "round");
  }
  // Running counter totals are 1, 3, 6, 10, 15.
  const std::int64_t expected[] = {1, 3, 6, 10, 15};
  for (std::size_t i = 0; i < 5; ++i) {
    const MetricsSnapshot snap = tl.at(i);
    EXPECT_EQ(valueOf(snap, "counter/c"), expected[i]) << i;
    EXPECT_EQ(valueOf(snap, "gauge/g"), 10 - static_cast<std::int64_t>(i + 1))
        << i;
  }
  EXPECT_EQ(valueOf(tl.latest(), "counter/c"), 15);
}

TEST(MetricsTimeline, RingEvictionFoldsIntoBase) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  MetricsTimeline::Config cfg;
  cfg.capacity = 3;
  MetricsTimeline tl(reg, cfg);

  for (int i = 1; i <= 10; ++i) {
    c.add(1);
    tl.capture(i, "round");
  }
  EXPECT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl.captured(), 10u);
  EXPECT_EQ(tl.evicted(), 7u);
  // The oldest retained window still reconstructs the exact totals: points
  // hold captures 8, 9, 10 of a counter bumped once per capture.
  EXPECT_EQ(valueOf(tl.at(0), "counter/c"), 8);
  EXPECT_EQ(valueOf(tl.at(1), "counter/c"), 9);
  EXPECT_EQ(valueOf(tl.at(2), "counter/c"), 10);
  EXPECT_EQ(valueOf(tl.latest(), "counter/c"), 10);
}

TEST(MetricsTimeline, NewSeriesAppearMidStream) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  MetricsTimeline tl(reg);

  a.add(1);
  tl.capture(1, "r");
  EXPECT_FALSE(hasKey(tl.latest(), "counter/late"));
  reg.counter("late").add(7);
  tl.capture(2, "r");
  EXPECT_EQ(valueOf(tl.latest(), "counter/late"), 7);
  // The late series' first delta is its absolute value (delta from zero).
  const auto& deltas = tl.points().back().deltas;
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].first, "counter/late");
  EXPECT_EQ(deltas[0].second, 7);
}

TEST(MetricsTimeline, JsonIsSchemaTaggedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("x").add(4);
  reg.gauge("y").set(-2);
  MetricsTimeline tl(reg);
  tl.capture(50, "round 1");

  const std::string json = tl.toJson();
  EXPECT_NE(json.find("\"schema\": \"wst-timeline-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counter/x\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"gauge/y\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"round 1\""), std::string::npos);
  EXPECT_EQ(json, tl.toJson());  // rendering is a pure function of state
}

TEST(MetricsTimeline, PrometheusManglesNamesAndTypes) {
  MetricsRegistry reg;
  reg.counter("overlay/msgs").add(3);
  reg.gauge("trace/window").set(12);
  reg.histogram("svc/ns").record(100);
  MetricsTimeline tl(reg);
  tl.capture(99, "round");

  const std::string prom = tl.prometheus();
  EXPECT_NE(prom.find("wst_virtual_time_ns 99"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE wst_overlay_msgs counter"), std::string::npos);
  EXPECT_NE(prom.find("wst_overlay_msgs 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE wst_trace_window gauge"), std::string::npos);
  // Histogram facets mangle '#' to '_' and are exposed as gauges.
  EXPECT_NE(prom.find("wst_svc_ns_count 1"), std::string::npos);
  // Stand-alone exposition of an arbitrary snapshot matches the member.
  EXPECT_EQ(prom, prometheusExposition(tl.latest(), 99));
}

}  // namespace
}  // namespace wst::support

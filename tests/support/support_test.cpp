#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace wst::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%s", ""), "");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, FormatDurationNs) {
  EXPECT_EQ(formatDurationNs(15), "15 ns");
  EXPECT_EQ(formatDurationNs(1'500), "1.500 us");
  EXPECT_EQ(formatDurationNs(2'345'678), "2.346 ms");
  EXPECT_EQ(formatDurationNs(3'200'000'000ULL), "3.200 s");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Strings, HtmlEscape) {
  EXPECT_EQ(htmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(htmlEscape("plain"), "plain");
}

TEST(Strings, DotEscape) {
  EXPECT_EQ(dotEscape("a\"b\\c"), "a\\\"b\\\\c");
}

}  // namespace
}  // namespace wst::support

#include "support/tracing.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/trace_export.hpp"

namespace wst::support {
namespace {

Tracer::Config configWith(std::uint64_t* clock, std::size_t capacity,
                          MetricsRegistry* metrics = nullptr) {
  Tracer::Config cfg;
  cfg.capacityPerTrack = capacity;
  cfg.clock = [clock] { return *clock; };
  cfg.metrics = metrics;
  return cfg;
}

TEST(TraceTrack, RecordsEventsWithClockTimestamps) {
  std::uint64_t now = 0;
  Tracer tracer(configWith(&now, 8));
  TraceTrack* track = tracer.track(TrackKind::kAppProc, 0, "rank 0");
  ASSERT_NE(track, nullptr);
  now = 10;
  track->spanBegin("send", "blocked", "peer", 3);
  now = 25;
  track->spanEnd("send", "blocked");
  ASSERT_EQ(track->size(), 2u);
  const std::vector<TraceEvent> events = track->snapshot();
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[0].type, TraceEventType::kSpanBegin);
  EXPECT_STREQ(events[0].argName0, "peer");
  EXPECT_EQ(events[0].arg0, 3);
  EXPECT_EQ(events[1].ts, 25u);
  EXPECT_EQ(events[1].type, TraceEventType::kSpanEnd);
}

TEST(TraceTrack, RingWrapDropsOldestAndCounts) {
  std::uint64_t now = 0;
  MetricsRegistry metrics;
  Tracer tracer(configWith(&now, 4, &metrics));
  TraceTrack* track = tracer.track(TrackKind::kAppProc, 0, "rank 0");
  for (std::int64_t i = 0; i < 10; ++i) {
    now = static_cast<std::uint64_t>(i);
    track->instant("tick", "test", "i", i);
  }
  EXPECT_EQ(track->recorded(), 10u);
  EXPECT_EQ(track->size(), 4u);
  EXPECT_EQ(track->dropped(), 6u);
  EXPECT_EQ(tracer.totalDropped(), 6u);
  EXPECT_EQ(metrics.counter("trace/dropped_events").value(), 6u);
  // Oldest-first visit of the survivors: the last `capacity` events.
  std::vector<std::int64_t> seen;
  track->forEach([&](const TraceEvent& ev) { seen.push_back(ev.arg0); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{6, 7, 8, 9}));
}

TEST(Tracer, DisabledHandsOutNullTracks) {
  std::uint64_t now = 0;
  Tracer::Config cfg = configWith(&now, 8);
  cfg.enabled = false;
  Tracer tracer(cfg);
  EXPECT_EQ(tracer.track(TrackKind::kAppProc, 0, "rank 0"), nullptr);
  EXPECT_TRUE(tracer.sortedTracks().empty());
  EXPECT_EQ(tracer.totalDropped(), 0u);
}

TEST(Tracer, SortedTracksOrderByKindThenIndex) {
  std::uint64_t now = 0;
  Tracer tracer(configWith(&now, 8));
  tracer.track(TrackKind::kToolNode, 1, "node 1");
  tracer.track(TrackKind::kEngine, 0, "engine");
  tracer.track(TrackKind::kAppProc, 2, "rank 2");
  tracer.track(TrackKind::kAppProc, 0, "rank 0");
  // Create-or-get: same (kind, index) returns the same track; the first
  // registered name wins.
  EXPECT_EQ(tracer.track(TrackKind::kAppProc, 0, "other"),
            tracer.track(TrackKind::kAppProc, 0, "rank 0"));
  const auto tracks = tracer.sortedTracks();
  ASSERT_EQ(tracks.size(), 4u);
  EXPECT_EQ(tracks[0]->name(), "rank 0");
  EXPECT_EQ(tracks[1]->name(), "rank 2");
  EXPECT_EQ(tracks[2]->name(), "node 1");
  EXPECT_EQ(tracks[3]->name(), "engine");
}

TEST(TraceExport, ChromeJsonHasMetadataAndEvents) {
  std::uint64_t now = 0;
  Tracer tracer(configWith(&now, 8));
  TraceTrack* rank = tracer.track(TrackKind::kAppProc, 0, "rank 0");
  TraceTrack* node = tracer.track(TrackKind::kToolNode, 0, "node 0 L0");
  now = 1000;
  rank->spanBegin("send", "blocked", "peer", 1);
  node->flowBegin("passSend", "waitstate", 0x42);
  now = 3500;
  node->flowEnd("passSend", "waitstate", 0x42);
  rank->spanEnd("send", "blocked");
  const std::string json = toChromeTraceJson(tracer);
  // Track metadata names the threads; events carry the virtual timestamps
  // rendered as microseconds with fixed 3-digit precision.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":3.500"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x42\""), std::string::npos);
}

TEST(TraceExport, BlockedTimeAttribution) {
  std::uint64_t now = 0;
  Tracer tracer(configWith(&now, 16));
  TraceTrack* track = tracer.track(TrackKind::kAppProc, 3, "rank 3");
  // 40ns blocked in send to rank 1, then a recv posted to "any" that the
  // completion resolves to rank 2, then a send that never completes.
  now = 100;
  track->spanBegin("send", "blocked", "peer", 1);
  now = 140;
  track->spanEnd("send", "blocked", "peer", 1);
  now = 200;
  track->spanBegin("recv", "blocked", "peer", -1);
  now = 260;
  track->spanEnd("recv", "blocked", "peer", 2);
  now = 300;
  track->spanBegin("send", "blocked", "peer", 0);
  const auto profiles = attributeBlockedTime(tracer, /*endTs=*/1000,
                                             /*tailCount=*/8);
  ASSERT_EQ(profiles.size(), 1u);
  const ProcBlockedProfile& p = profiles[0];
  EXPECT_EQ(p.proc, 3);
  // 40 + 60 + (1000 - 300) for the still-open deadlocked span.
  EXPECT_EQ(p.totalBlockedNs, 40u + 60u + 700u);
  ASSERT_FALSE(p.byKind.empty());
  EXPECT_EQ(p.byKind[0].first, "send");  // 740ns beats recv's 60ns
  EXPECT_EQ(p.byKind[0].second, 740u);
  // The wildcard recv is attributed to its resolved peer, not "any".
  bool sawRank2 = false;
  for (const auto& [peer, ns] : p.byPeer) {
    if (peer == "rank 2") {
      sawRank2 = true;
      EXPECT_EQ(ns, 60u);
    }
  }
  EXPECT_TRUE(sawRank2);
  EXPECT_FALSE(p.tail.empty());
}

TEST(Strings, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string("nul\x01") + "byte"), "nul\\u0001byte");
  EXPECT_EQ(jsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(Metrics, HistogramQuantile) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // Bucketed estimates: exact at the clamped extremes, within the bucket
  // width elsewhere.
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 16.0);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.99), 100.0);

  Histogram single;
  single.record(7);
  EXPECT_EQ(single.quantile(0.5), 7.0);
}

}  // namespace
}  // namespace wst::support

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "tbon/overlay.hpp"
#include "tbon/topology.hpp"

namespace wst::tbon {
namespace {

struct Msg {
  int tag = 0;
};

struct Fixture {
  sim::Engine engine;
  Topology topology;
  Overlay<Msg> overlay;
  std::vector<std::pair<NodeId, int>> received;

  explicit Fixture(std::int32_t procs, std::int32_t fanIn,
                   OverlayConfig cfg = {}, sim::Duration cost = 0)
      : topology(procs, fanIn),
        overlay(engine, topology, cfg, [cost](NodeId, const Msg&) {
          return cost;
        }) {
    overlay.setHandler([this](NodeId node, Msg&& m) {
      received.emplace_back(node, m.tag);
    });
  }
};

TEST(Overlay, InjectReachesHostingLeaf) {
  Fixture f(8, 4);
  f.overlay.inject(5, Msg{55}, 8);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, f.topology.nodeOfProc(5));
  EXPECT_EQ(f.received[0].second, 55);
}

TEST(Overlay, SendUpReachesParentAndDownReachesChild) {
  Fixture f(8, 4);  // nodes 0,1 -> root 2
  f.overlay.sendUp(0, Msg{1}, 4);
  f.overlay.sendDown(2, 1, Msg{2}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0], (std::pair<NodeId, int>{2, 1}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, int>{1, 2}));
}

TEST(Overlay, IntralayerAndSelfDelivery) {
  Fixture f(8, 4);
  f.overlay.sendIntralayer(0, 1, Msg{7}, 4);
  f.overlay.sendIntralayer(1, 1, Msg{8}, 4);  // self-send
  f.engine.run();
  ASSERT_EQ(f.received.size(), 2u);
  // Self-send has zero latency, delivered first.
  EXPECT_EQ(f.received[0], (std::pair<NodeId, int>{1, 8}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, int>{1, 7}));
}

TEST(Overlay, PerLinkFifoOrder) {
  Fixture f(8, 4);
  for (int i = 0; i < 10; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.received[i].second, i);
}

TEST(Overlay, ServiceCostSerializesNodeProcessing) {
  Fixture f(8, 4, {}, /*cost=*/1'000);
  const sim::Time start = f.engine.now();
  for (int i = 0; i < 5; ++i) f.overlay.inject(0, Msg{i}, 4);
  f.engine.run();
  // 5 messages, 1us service each, processed sequentially after ~2us latency.
  EXPECT_GE(f.engine.now() - start, 2'000u + 4u * 1'000u);
  EXPECT_EQ(f.received.size(), 5u);
}

TEST(Overlay, CreditsBackpressureProducers) {
  OverlayConfig cfg;
  cfg.appToLeaf.credits = 2;
  Fixture f(4, 4, cfg, /*cost=*/500);
  EXPECT_TRUE(f.overlay.canInject(0));
  f.overlay.inject(0, Msg{1}, 4);
  f.overlay.inject(0, Msg{2}, 4);
  EXPECT_FALSE(f.overlay.canInject(0));
  bool woken = false;
  f.overlay.onceInjectCredit(0, [&] { woken = true; });
  f.engine.run();  // processing returns credits
  EXPECT_TRUE(woken);
  EXPECT_TRUE(f.overlay.canInject(0));
}

TEST(Overlay, UnthrottledInjectionBypassesCredits) {
  OverlayConfig cfg;
  cfg.appToLeaf.credits = 1;
  Fixture f(4, 4, cfg);
  f.overlay.inject(0, Msg{1}, 4);
  EXPECT_FALSE(f.overlay.canInject(0));
  f.overlay.injectUnthrottled(0, Msg{2}, 4);  // must not assert or block
  f.engine.run();
  EXPECT_EQ(f.received.size(), 2u);
}

TEST(Overlay, CountsTrafficByLinkClass) {
  Fixture f(8, 4);
  f.overlay.inject(0, Msg{}, 10);
  f.overlay.sendUp(0, Msg{}, 20);
  f.overlay.sendDown(2, 0, Msg{}, 30);
  f.overlay.sendIntralayer(0, 1, Msg{}, 40);
  f.engine.run();
  EXPECT_EQ(f.overlay.messages(LinkClass::kAppToLeaf), 1u);
  EXPECT_EQ(f.overlay.bytes(LinkClass::kAppToLeaf), 10u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kUp), 1u);
  EXPECT_EQ(f.overlay.bytes(LinkClass::kUp), 20u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kDown), 1u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kIntralayer), 1u);
  EXPECT_EQ(f.overlay.totalMessages(), 4u);
}

// --- batching --------------------------------------------------------------

OverlayConfig batchedConfig(BatchConfig batch) {
  OverlayConfig cfg;
  cfg.batch[static_cast<std::size_t>(LinkClass::kIntralayer)] = batch;
  cfg.batch[static_cast<std::size_t>(LinkClass::kUp)] = batch;
  return cfg;
}

TEST(OverlayBatch, CoalescesSameInstantSends) {
  Fixture f(8, 4, batchedConfig({.maxMessages = 64, .flushInterval = 0}));
  for (int i = 0; i < 10; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.received[i].second, i);
  EXPECT_EQ(f.overlay.messages(LinkClass::kIntralayer), 10u);
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kIntralayer), 1u);
  EXPECT_EQ(f.overlay.channelBytes(LinkClass::kIntralayer), 40u);
}

TEST(OverlayBatch, SizeThresholdFlushesEagerly) {
  Fixture f(8, 4, batchedConfig({.maxMessages = 4, .flushInterval = 50'000}));
  for (int i = 0; i < 10; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.received[i].second, i);
  // 4 + 4 by threshold, the trailing 2 by the flush timer.
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kIntralayer), 3u);
}

TEST(OverlayBatch, ByteThresholdFlushesEagerly) {
  Fixture f(8, 4,
            batchedConfig(
                {.maxMessages = 64, .maxBytes = 100, .flushInterval = 50'000}));
  for (int i = 0; i < 6; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 40);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 6u);
  // 120 bytes trip the 100-byte trigger after 3 messages, twice.
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kIntralayer), 2u);
}

TEST(OverlayBatch, FlushIntervalDelaysDelivery) {
  OverlayConfig plain;
  Fixture unbatched(8, 4, plain);
  unbatched.overlay.sendIntralayer(0, 1, Msg{1}, 4);
  unbatched.engine.run();
  const sim::Time plainArrival = unbatched.engine.now();

  Fixture f(8, 4, batchedConfig({.maxMessages = 64, .flushInterval = 7'000}));
  f.overlay.sendIntralayer(0, 1, Msg{1}, 4);
  f.engine.run();
  EXPECT_EQ(f.engine.now(), plainArrival + 7'000);
  ASSERT_EQ(f.received.size(), 1u);
}

TEST(OverlayBatch, BypassFlushesStagedTrafficFirst) {
  Fixture f(8, 4, batchedConfig({.maxMessages = 64, .flushInterval = 50'000}));
  // Negative tags are control-plane messages that must not be delayed.
  f.overlay.setBatchable([](const Msg& m) { return m.tag >= 0; });
  f.overlay.sendIntralayer(0, 1, Msg{0}, 4);
  f.overlay.sendIntralayer(0, 1, Msg{1}, 4);
  f.overlay.sendIntralayer(0, 1, Msg{-1}, 4);
  f.engine.run();
  // The bypass message must not overtake the staged batch: arrival order is
  // exactly send order, and nothing waits for the flush timer.
  ASSERT_EQ(f.received.size(), 3u);
  EXPECT_EQ(f.received[0].second, 0);
  EXPECT_EQ(f.received[1].second, 1);
  EXPECT_EQ(f.received[2].second, -1);
  // One batch envelope + one bypass message.
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kIntralayer), 2u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kIntralayer), 3u);
}

TEST(OverlayBatch, TreeUpBatches) {
  Fixture f(8, 4, batchedConfig({.maxMessages = 64, .flushInterval = 0}));
  f.overlay.sendUp(0, Msg{1}, 8);
  f.overlay.sendUp(0, Msg{2}, 8);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kUp), 2u);
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kUp), 1u);
}

TEST(OverlayBatch, AmortizedServiceCost) {
  // 4 messages at cost 1000 with factor 0.25: the receiver stays busy
  // 1000 + 3 * 250 instead of 4 * 1000.
  BatchConfig batch{.maxMessages = 64,
                    .flushInterval = 0,
                    .amortizedCostFactor = 0.25};
  Fixture f(8, 4, batchedConfig(batch), /*cost=*/1'000);
  for (int i = 0; i < 4; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  const sim::Time batchedEnd = f.engine.now();

  Fixture plain(8, 4, {}, /*cost=*/1'000);
  for (int i = 0; i < 4; ++i) plain.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  plain.engine.run();
  // The last event in either run is the 4th message's dequeue, so the
  // visible saving is the cheaper service of the 2nd and 3rd messages.
  EXPECT_EQ(plain.engine.now() - batchedEnd, 2u * 750u);
}

TEST(OverlayBatch, UnbatchedClassesUnaffected) {
  Fixture f(8, 4, batchedConfig({.maxMessages = 64, .flushInterval = 0}));
  f.overlay.inject(0, Msg{1}, 4);
  f.overlay.sendDown(2, 0, Msg{2}, 4);
  f.engine.run();
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kAppToLeaf), 1u);
  EXPECT_EQ(f.overlay.channelMessages(LinkClass::kDown), 1u);
  EXPECT_EQ(f.overlay.totalChannelMessages(), f.overlay.totalMessages());
}

TEST(OverlayBatch, MetricsRecordOccupancy) {
  support::MetricsRegistry metrics;
  Fixture f(8, 4, batchedConfig({.maxMessages = 4, .flushInterval = 0}));
  f.overlay.setMetrics(&metrics);
  for (int i = 0; i < 6; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  const auto& occupancy = metrics.histogram("overlay/batch_occupancy");
  EXPECT_EQ(occupancy.count(), 2u);  // one flush of 4, one of 2
  EXPECT_EQ(occupancy.max(), 4u);
  EXPECT_EQ(occupancy.sum(), 6u);
  EXPECT_GT(metrics.histogram("overlay/queue_depth").count(), 0u);
}

// --- fault injection --------------------------------------------------------------

OverlayConfig faultedConfig(std::uint64_t seed) {
  OverlayConfig cfg;
  cfg.faults.enabled = true;
  cfg.faults.seed = seed;
  cfg.faults.dropProb = 0.30;
  cfg.faults.dupProb = 0.25;
  cfg.faults.delayProb = 0.40;
  cfg.faults.maxExtraDelay = 15'000;
  return cfg;
}

struct FaultFixture : Fixture {
  explicit FaultFixture(std::uint64_t seed) : Fixture(8, 4, faultedConfig(seed)) {
    overlay.setFaultable([](const Msg&) { return true; });
  }
};

TEST(OverlayFaults, ReliableLayerDeliversExactlyOnceInOrder) {
  FaultFixture f(/*seed=*/7);
  for (int i = 0; i < 60; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  for (int i = 0; i < 20; ++i) f.overlay.sendUp(0, Msg{100 + i}, 4);
  f.engine.run();

  // Every message arrives exactly once, per-link order intact, despite the
  // injector dropping, duplicating and delaying transmissions underneath.
  std::vector<int> atNode1;
  std::vector<int> atRoot;
  for (const auto& [node, tag] : f.received) {
    (node == 1 ? atNode1 : atRoot).push_back(tag);
  }
  ASSERT_EQ(atNode1.size(), 60u);
  ASSERT_EQ(atRoot.size(), 20u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(atNode1[static_cast<std::size_t>(i)], i);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(atRoot[static_cast<std::size_t>(i)], 100 + i);
  }

  // With these probabilities over 80 messages the injector certainly fired,
  // and every perturbation left a healing trace.
  const FaultStats s = f.overlay.faultStats();
  EXPECT_GT(s.dropsInjected, 0u);
  EXPECT_GT(s.dupsInjected, 0u);
  EXPECT_GT(s.delaysInjected, 0u);
  EXPECT_GE(s.retransmits, s.dropsInjected);
  EXPECT_GE(s.duplicatesDiscarded, s.dupsInjected);
  EXPECT_GT(s.acksSent, 0u);
}

TEST(OverlayFaults, ScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    FaultFixture f(seed);
    for (int i = 0; i < 40; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
    f.engine.run();
    return f.overlay.faultStats();
  };
  const FaultStats a = run(21);
  const FaultStats b = run(21);
  EXPECT_EQ(a.dropsInjected, b.dropsInjected);
  EXPECT_EQ(a.dupsInjected, b.dupsInjected);
  EXPECT_EQ(a.delaysInjected, b.delaysInjected);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.duplicatesDiscarded, b.duplicatesDiscarded);
  EXPECT_EQ(a.reordersBuffered, b.reordersBuffered);
  EXPECT_EQ(a.acksSent, b.acksSent);
  // A different seed draws a different schedule (overwhelmingly likely
  // with 40 messages at these probabilities).
  const FaultStats c = run(22);
  EXPECT_TRUE(a.dropsInjected != c.dropsInjected ||
              a.dupsInjected != c.dupsInjected ||
              a.delaysInjected != c.delaysInjected);
}

TEST(OverlayFaults, ControlPlaneNeverPerturbed) {
  // Messages the faultable predicate rejects are sequenced but never
  // dropped, duplicated, or delayed.
  FaultFixture f(/*seed=*/5);
  f.overlay.setFaultable([](const Msg& m) { return m.tag >= 1000; });
  for (int i = 0; i < 30; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 30u);
  const FaultStats s = f.overlay.faultStats();
  EXPECT_EQ(s.dropsInjected, 0u);
  EXPECT_EQ(s.dupsInjected, 0u);
  EXPECT_EQ(s.delaysInjected, 0u);
  EXPECT_EQ(s.retransmits, 0u);
}

TEST(OverlayFaults, JitterPreservesPerLinkOrder) {
  OverlayConfig cfg;
  cfg.intralayer.jitter = 5'000;
  cfg.intralayer.jitterSeed = 99;
  Fixture f(8, 4, cfg);
  for (int i = 0; i < 25; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(f.received[static_cast<std::size_t>(i)].second, i);
  }
}

}  // namespace
}  // namespace wst::tbon

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "tbon/overlay.hpp"
#include "tbon/topology.hpp"

namespace wst::tbon {
namespace {

struct Msg {
  int tag = 0;
};

struct Fixture {
  sim::Engine engine;
  Topology topology;
  Overlay<Msg> overlay;
  std::vector<std::pair<NodeId, int>> received;

  explicit Fixture(std::int32_t procs, std::int32_t fanIn,
                   OverlayConfig cfg = {}, sim::Duration cost = 0)
      : topology(procs, fanIn),
        overlay(engine, topology, cfg, [cost](NodeId, const Msg&) {
          return cost;
        }) {
    overlay.setHandler([this](NodeId node, Msg&& m) {
      received.emplace_back(node, m.tag);
    });
  }
};

TEST(Overlay, InjectReachesHostingLeaf) {
  Fixture f(8, 4);
  f.overlay.inject(5, Msg{55}, 8);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, f.topology.nodeOfProc(5));
  EXPECT_EQ(f.received[0].second, 55);
}

TEST(Overlay, SendUpReachesParentAndDownReachesChild) {
  Fixture f(8, 4);  // nodes 0,1 -> root 2
  f.overlay.sendUp(0, Msg{1}, 4);
  f.overlay.sendDown(2, 1, Msg{2}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0], (std::pair<NodeId, int>{2, 1}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, int>{1, 2}));
}

TEST(Overlay, IntralayerAndSelfDelivery) {
  Fixture f(8, 4);
  f.overlay.sendIntralayer(0, 1, Msg{7}, 4);
  f.overlay.sendIntralayer(1, 1, Msg{8}, 4);  // self-send
  f.engine.run();
  ASSERT_EQ(f.received.size(), 2u);
  // Self-send has zero latency, delivered first.
  EXPECT_EQ(f.received[0], (std::pair<NodeId, int>{1, 8}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, int>{1, 7}));
}

TEST(Overlay, PerLinkFifoOrder) {
  Fixture f(8, 4);
  for (int i = 0; i < 10; ++i) f.overlay.sendIntralayer(0, 1, Msg{i}, 4);
  f.engine.run();
  ASSERT_EQ(f.received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.received[i].second, i);
}

TEST(Overlay, ServiceCostSerializesNodeProcessing) {
  Fixture f(8, 4, {}, /*cost=*/1'000);
  const sim::Time start = f.engine.now();
  for (int i = 0; i < 5; ++i) f.overlay.inject(0, Msg{i}, 4);
  f.engine.run();
  // 5 messages, 1us service each, processed sequentially after ~2us latency.
  EXPECT_GE(f.engine.now() - start, 2'000u + 4u * 1'000u);
  EXPECT_EQ(f.received.size(), 5u);
}

TEST(Overlay, CreditsBackpressureProducers) {
  OverlayConfig cfg;
  cfg.appToLeaf.credits = 2;
  Fixture f(4, 4, cfg, /*cost=*/500);
  EXPECT_TRUE(f.overlay.canInject(0));
  f.overlay.inject(0, Msg{1}, 4);
  f.overlay.inject(0, Msg{2}, 4);
  EXPECT_FALSE(f.overlay.canInject(0));
  bool woken = false;
  f.overlay.onceInjectCredit(0, [&] { woken = true; });
  f.engine.run();  // processing returns credits
  EXPECT_TRUE(woken);
  EXPECT_TRUE(f.overlay.canInject(0));
}

TEST(Overlay, UnthrottledInjectionBypassesCredits) {
  OverlayConfig cfg;
  cfg.appToLeaf.credits = 1;
  Fixture f(4, 4, cfg);
  f.overlay.inject(0, Msg{1}, 4);
  EXPECT_FALSE(f.overlay.canInject(0));
  f.overlay.injectUnthrottled(0, Msg{2}, 4);  // must not assert or block
  f.engine.run();
  EXPECT_EQ(f.received.size(), 2u);
}

TEST(Overlay, CountsTrafficByLinkClass) {
  Fixture f(8, 4);
  f.overlay.inject(0, Msg{}, 10);
  f.overlay.sendUp(0, Msg{}, 20);
  f.overlay.sendDown(2, 0, Msg{}, 30);
  f.overlay.sendIntralayer(0, 1, Msg{}, 40);
  f.engine.run();
  EXPECT_EQ(f.overlay.messages(LinkClass::kAppToLeaf), 1u);
  EXPECT_EQ(f.overlay.bytes(LinkClass::kAppToLeaf), 10u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kUp), 1u);
  EXPECT_EQ(f.overlay.bytes(LinkClass::kUp), 20u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kDown), 1u);
  EXPECT_EQ(f.overlay.messages(LinkClass::kIntralayer), 1u);
  EXPECT_EQ(f.overlay.totalMessages(), 4u);
}

}  // namespace
}  // namespace wst::tbon

#include <gtest/gtest.h>

#include "tbon/topology.hpp"

namespace wst::tbon {
namespace {

TEST(Topology, SingleNodeTreeWhenFanInCoversAll) {
  Topology t(4, 8);
  EXPECT_EQ(t.nodeCount(), 1);
  EXPECT_EQ(t.firstLayerCount(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.isFirstLayer(0));
  EXPECT_TRUE(t.isRoot(0));
  EXPECT_EQ(t.node(0).procLo, 0);
  EXPECT_EQ(t.node(0).procHi, 4);
}

TEST(Topology, TwoLayerTree) {
  Topology t(8, 4);
  EXPECT_EQ(t.firstLayerCount(), 2);
  EXPECT_EQ(t.nodeCount(), 3);
  EXPECT_EQ(t.layerCount(), 2);
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.node(0).parent, 2);
  EXPECT_EQ(t.node(1).parent, 2);
  EXPECT_EQ(t.node(2).children, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(t.node(2).procLo, 0);
  EXPECT_EQ(t.node(2).procHi, 8);
}

TEST(Topology, DeepTreeFanIn2) {
  Topology t(16, 2);
  // Layers: 8 + 4 + 2 + 1 = 15 nodes, 4 layers.
  EXPECT_EQ(t.firstLayerCount(), 8);
  EXPECT_EQ(t.nodeCount(), 15);
  EXPECT_EQ(t.layerCount(), 4);
  EXPECT_TRUE(t.isRoot(14));
  // Every non-root node has a parent; subtree ranges nest.
  for (NodeId n = 0; n < t.nodeCount() - 1; ++n) {
    const NodeInfo& info = t.node(n);
    ASSERT_GE(info.parent, 0);
    const NodeInfo& parent = t.node(info.parent);
    EXPECT_LE(parent.procLo, info.procLo);
    EXPECT_GE(parent.procHi, info.procHi);
  }
}

TEST(Topology, UnevenProcessCount) {
  Topology t(10, 4);
  EXPECT_EQ(t.firstLayerCount(), 3);
  EXPECT_EQ(t.node(2).procLo, 8);
  EXPECT_EQ(t.node(2).procHi, 10);
  EXPECT_EQ(t.nodeOfProc(9), 2);
  EXPECT_EQ(t.nodeOfProc(0), 0);
  EXPECT_EQ(t.nodeOfProc(7), 1);
}

TEST(Topology, ProcRangesPartitionTheWorld) {
  for (const int p : {3, 16, 100, 1000}) {
    for (const int f : {2, 4, 8}) {
      Topology t(p, f);
      int covered = 0;
      for (NodeId n = 0; n < t.firstLayerCount(); ++n) {
        covered += t.node(n).procCount();
        EXPECT_EQ(t.node(n).layer, 1);
      }
      EXPECT_EQ(covered, p);
      // Root covers everything.
      EXPECT_EQ(t.node(t.root()).procLo, 0);
      EXPECT_EQ(t.node(t.root()).procHi, p);
    }
  }
}

TEST(Topology, StressScaleShapes) {
  // Paper scales: 4096 processes at fan-in 2 -> 2048 leaves, 12 layers.
  Topology t(4096, 2);
  EXPECT_EQ(t.firstLayerCount(), 2048);
  EXPECT_EQ(t.layerCount(), 12);
  Topology t4(4096, 4);
  EXPECT_EQ(t4.firstLayerCount(), 1024);
  EXPECT_EQ(t4.layerCount(), 6);
}

}  // namespace
}  // namespace wst::tbon

// Trace model: blocking predicate table, record description, matched-trace
// container invariants, and the builder.
#include <gtest/gtest.h>

#include "trace/builder.hpp"
#include "trace/event.hpp"
#include "trace/matched_trace.hpp"
#include "trace/op.hpp"

namespace wst::trace {
namespace {

Record make(Kind kind) {
  Record r;
  r.kind = kind;
  return r;
}

// --- The paper's blocking predicate b (§3.1) -------------------------------

struct BlockingCase {
  Kind kind;
  mpi::SendMode mode;
  bool conservative;
  bool faithful;  // small message, buffering implementation
};

class BlockingPredicateTest : public ::testing::TestWithParam<BlockingCase> {};

TEST_P(BlockingPredicateTest, MatchesPaperDefinition) {
  const BlockingCase& c = GetParam();
  Record r = make(c.kind);
  r.sendMode = c.mode;
  r.bytes = 16;  // below any eager threshold
  EXPECT_EQ(isBlocking(r, BlockingModel::kConservative), c.conservative);
  EXPECT_EQ(isBlocking(r, BlockingModel::kImplementationFaithful),
            c.faithful);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, BlockingPredicateTest,
    ::testing::Values(
        // Blocking under both models.
        BlockingCase{Kind::kRecv, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kProbe, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kSendrecv, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kWait, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kWaitall, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kWaitany, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kWaitsome, mpi::SendMode::kStandard, true, true},
        BlockingCase{Kind::kCollective, mpi::SendMode::kStandard, true, true},
        // Ssend blocks always; standard Send only conservatively.
        BlockingCase{Kind::kSend, mpi::SendMode::kSynchronous, true, true},
        BlockingCase{Kind::kSend, mpi::SendMode::kStandard, true, false},
        // MPI_{B,R}send are non-blocking for b (paper definition).
        BlockingCase{Kind::kSend, mpi::SendMode::kBuffered, false, false},
        BlockingCase{Kind::kSend, mpi::SendMode::kReady, false, false},
        // Non-blocking operations.
        BlockingCase{Kind::kIsend, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kIsend, mpi::SendMode::kSynchronous, false, false},
        BlockingCase{Kind::kIrecv, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kIprobe, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kTest, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kTestall, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kTestany, mpi::SendMode::kStandard, false, false},
        BlockingCase{Kind::kTestsome, mpi::SendMode::kStandard, false,
                     false}));

TEST(BlockingPredicate, LargeStandardSendBlocksEvenFaithfully) {
  Record r = make(Kind::kSend);
  r.sendMode = mpi::SendMode::kStandard;
  r.bytes = 1 << 20;
  EXPECT_TRUE(isBlocking(r, BlockingModel::kImplementationFaithful,
                         /*eagerThreshold=*/4096));
}

// --- describe --------------------------------------------------------------

TEST(Describe, RendersCommonOps) {
  Record send = make(Kind::kSend);
  send.peer = 3;
  send.tag = 7;
  EXPECT_EQ(describe(send), "send(to:3, tag:7)");
  send.sendMode = mpi::SendMode::kSynchronous;
  EXPECT_EQ(describe(send), "ssend(to:3, tag:7)");

  Record recv = make(Kind::kRecv);
  recv.peer = mpi::kAnySource;
  recv.tag = 2;
  EXPECT_EQ(describe(recv), "Recv(from:ANY, tag:2)");

  Record coll = make(Kind::kCollective);
  coll.collective = mpi::CollectiveKind::kAllreduce;
  coll.comm = 1;
  EXPECT_EQ(describe(coll), "Allreduce(comm:1)");

  Record wait = make(Kind::kWaitall);
  wait.completes = {0, 1, 2};
  EXPECT_EQ(describe(wait), "Waitall(3 reqs)");

  EXPECT_EQ(describe(make(Kind::kFinalize)), "Finalize()");
}

// --- MatchedTrace container ---------------------------------------------------

TEST(MatchedTrace, AppendEnforcesCallOrder) {
  MatchedTrace t(2);
  Record r = make(Kind::kSend);
  r.id = OpId{0, 0};
  r.peer = 1;
  t.append(r);
  EXPECT_EQ(t.length(0), 1u);
  EXPECT_EQ(t.length(1), 0u);
  EXPECT_TRUE(t.hasOp(OpId{0, 0}));
  EXPECT_FALSE(t.hasOp(OpId{0, 1}));
  EXPECT_FALSE(t.hasOp(OpId{1, 0}));
}

TEST(MatchedTrace, RequestTable) {
  MatchedTrace t(1);
  Record r = make(Kind::kIsend);
  r.id = OpId{0, 0};
  r.peer = 0;
  r.request = 5;
  t.append(r);
  EXPECT_EQ(t.requestOrigin(0, 5), (OpId{0, 0}));
  EXPECT_FALSE(t.requestOrigin(0, 6).has_value());
}

TEST(MatchedTrace, WorldGroupPreRegistered) {
  MatchedTrace t(3);
  EXPECT_EQ(t.commGroup(mpi::kCommWorld),
            (std::vector<ProcId>{0, 1, 2}));
  t.setCommGroup(1, {0, 2});
  EXPECT_EQ(t.commGroup(1), (std::vector<ProcId>{0, 2}));
}

TEST(MatchedTrace, CollectiveWaveCompleteness) {
  TraceBuilder b(3);
  const auto wave = b.wave(mpi::kCommWorld, mpi::CollectiveKind::kBarrier, 3);
  b.addToWave(wave, b.collective(0, mpi::CollectiveKind::kBarrier));
  b.addToWave(wave, b.collective(1, mpi::CollectiveKind::kBarrier));
  EXPECT_FALSE(b.trace().waves()[wave].complete());
  b.addToWave(wave, b.collective(2, mpi::CollectiveKind::kBarrier));
  EXPECT_TRUE(b.trace().waves()[wave].complete());
  EXPECT_EQ(b.trace().waveOf(OpId{0, 0}), wave);
  EXPECT_FALSE(b.trace().waveOf(OpId{9, 9}).has_value());
}

TEST(MatchedTrace, ProbeMatchesDoNotConsume) {
  TraceBuilder b(2);
  const auto pr = b.probe(0, 1);
  const auto rc = b.recv(0, 1);
  const auto s = b.send(1, 0);
  b.matchProbe(pr, s);
  b.match(s, rc);
  EXPECT_EQ(b.trace().sendOf(pr), s);
  EXPECT_EQ(b.trace().sendOf(rc), s);
  EXPECT_EQ(b.trace().recvOf(s), rc);
  EXPECT_EQ(b.trace().probesOf(s), (std::vector<OpId>{pr}));
}

TEST(Builder, AssignsSequentialTimestampsPerProcess) {
  TraceBuilder b(2);
  const auto a = b.send(0, 1);
  const auto c = b.recv(0, 1);
  const auto d = b.send(1, 0);
  EXPECT_EQ(a, (OpId{0, 0}));
  EXPECT_EQ(c, (OpId{0, 1}));
  EXPECT_EQ(d, (OpId{1, 0}));
  EXPECT_EQ(b.trace().totalOps(), 3u);
}

TEST(Builder, IsendAllocatesDistinctRequests) {
  TraceBuilder b(1);
  auto [op1, req1] = b.isend(0, 0);
  auto [op2, req2] = b.isend(0, 0);
  (void)op1;
  (void)op2;
  EXPECT_NE(req1, req2);
}

TEST(Event, ModeledSizesArePositive) {
  Record r = make(Kind::kWaitall);
  r.completes = {0, 1, 2, 3};
  EXPECT_GT(modeledSize(Event{NewOpEvent{r}}), 32u);
  EXPECT_GT(modeledSize(Event{MatchInfoEvent{OpId{0, 0}, 1, 0}}), 0u);
}

}  // namespace
}  // namespace wst::trace

// Confluence of the wait-state transition system (paper §3.1): the terminal
// state is unique, so ANY maximal sequence of rule applications must land on
// the same state, blocked set, and finished set. The fuzz generator supplies
// structurally diverse programs (wildcards, probes, collectives, communicator
// splits, nonblocking storms, deadlock seeds); each is replayed through 20
// randomized rule orders and compared against the worklist order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/interpreter.hpp"
#include "fuzz/scenario.hpp"
#include "mpi/runtime.hpp"
#include "must/recorder.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "waitstate/transition_system.hpp"

namespace wst::waitstate {
namespace {

trace::MatchedTrace traceOf(const fuzz::Scenario& scenario) {
  const auto sc = std::make_shared<const fuzz::Scenario>(scenario);
  sim::Engine engine;
  mpi::RuntimeConfig cfg;
  cfg.ranksPerNode = 2;
  mpi::Runtime runtime(engine, cfg, scenario.procs);
  must::Recorder recorder(runtime);
  runtime.runToCompletion(fuzz::scenarioProgram(sc));
  return recorder.finish();
}

struct Terminal {
  State state;
  std::vector<trace::ProcId> blocked;
  std::vector<bool> finished;

  bool operator==(const Terminal&) const = default;
};

Terminal terminalOf(const TransitionSystem& ts, trace::ProcId procs) {
  Terminal t;
  t.state = ts.state();
  t.blocked = ts.blockedProcs();
  for (trace::ProcId p = 0; p < procs; ++p) {
    t.finished.push_back(ts.finished(p));
  }
  return t;
}

TEST(ConfluenceProperty, RandomOrdersReachTheSameTerminalState) {
  constexpr int kScenarios = 15;
  constexpr int kOrders = 20;
  for (int i = 0; i < kScenarios; ++i) {
    const fuzz::Scenario scenario =
        fuzz::makeScenario(0xC0FFEE00ULL + static_cast<std::uint64_t>(i));
    const trace::MatchedTrace trace = traceOf(scenario);

    TransitionSystem reference(trace);
    reference.runToTerminal();
    ASSERT_TRUE(reference.terminal());
    const Terminal expected = terminalOf(reference, scenario.procs);

    for (int order = 0; order < kOrders; ++order) {
      TransitionSystem ts(trace);
      support::Rng rng(0xFEED0000ULL + static_cast<std::uint64_t>(order));
      ts.runToTerminalRandomized(rng);
      ASSERT_TRUE(ts.terminal());
      EXPECT_EQ(terminalOf(ts, scenario.procs), expected)
          << "scenario " << i << " diverged under random order " << order;
    }
  }
}

TEST(ConfluenceProperty, TransitionCountIsOrderInvariant) {
  // Every maximal run applies the same multiset of transitions (one rule
  // per consumed trace record), so the count is order-independent too.
  const fuzz::Scenario scenario = fuzz::makeScenario(0xC0FFEE42ULL);
  const trace::MatchedTrace trace = traceOf(scenario);
  TransitionSystem reference(trace);
  const std::uint64_t expected = reference.runToTerminal();
  for (int order = 0; order < 5; ++order) {
    TransitionSystem ts(trace);
    support::Rng rng(static_cast<std::uint64_t>(order) + 1);
    EXPECT_EQ(ts.runToTerminalRandomized(rng), expected);
  }
}

}  // namespace
}  // namespace wst::waitstate

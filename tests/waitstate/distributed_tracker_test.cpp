// Unit tests of the distributed wait state tracker (paper Figure 7),
// driven directly through a loopback harness — no TBON, every message
// observable.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "waitstate/distributed_tracker.hpp"
#include "wfg/graph.hpp"

namespace wst::waitstate {
namespace {

using trace::Kind;
using trace::OpId;
using trace::ProcId;
using trace::Record;

/// Loopback "network": routes tracker messages to the hosting tracker
/// through a global FIFO queue and plays the TBON root for collectives.
struct Harness : Comms {
  std::int32_t fanIn;
  MapCommView comms;
  std::vector<std::unique_ptr<DistributedTracker>> nodes;
  std::deque<std::function<void()>> queue;
  bool draining = false;

  // Message counters for protocol assertions.
  int passSends = 0, recvActives = 0, recvActiveAcks = 0;
  int collectiveReadies = 0, collectiveAcks = 0;
  std::map<std::pair<mpi::CommId, std::uint32_t>, std::uint32_t> rootWaves;

  Harness(std::int32_t procs, std::int32_t fanIn_,
          TrackerConfig cfg = {})
      : fanIn(fanIn_), comms(procs) {
    for (ProcId lo = 0; lo < procs; lo += fanIn) {
      const ProcId hi = std::min(procs, lo + fanIn);
      nodes.push_back(
          std::make_unique<DistributedTracker>(lo, hi, *this, comms, cfg));
    }
  }

  DistributedTracker& of(ProcId proc) {
    return *nodes[static_cast<std::size_t>(proc / fanIn)];
  }

  void post(std::function<void()> fn) {
    queue.push_back(std::move(fn));
    if (draining) return;
    draining = true;
    while (!queue.empty()) {
      auto f = std::move(queue.front());
      queue.pop_front();
      f();
    }
    draining = false;
  }

  // Comms:
  void passSend(const PassSendMsg& msg) override {
    ++passSends;
    post([this, msg] { of(msg.destProc).onPassSend(msg); });
  }
  void recvActive(ProcId sendProc, const RecvActiveMsg& msg) override {
    ++recvActives;
    post([this, sendProc, msg] { of(sendProc).onRecvActive(msg); });
  }
  void recvActiveAck(ProcId recvProc,
                     const RecvActiveAckMsg& msg) override {
    ++recvActiveAcks;
    post([this, recvProc, msg] { of(recvProc).onRecvActiveAck(msg); });
  }
  void collectiveReady(const CollectiveReadyMsg& msg) override {
    ++collectiveReadies;
    post([this, msg] {
      auto& count = rootWaves[{msg.comm, msg.wave}];
      count += msg.readyCount;
      if (count == comms.group(msg.comm).size()) {
        ++collectiveAcks;
        const CollectiveAckMsg ack{msg.comm, msg.wave};
        for (auto& node : nodes) {
          post([&node, ack] { node->onCollectiveAck(ack); });
        }
      }
    });
  }

  // Application-side feeding.
  std::vector<trace::LocalTs> nextTs;
  Record rec(ProcId p, Kind kind) {
    if (nextTs.empty()) {
      nextTs.assign(nodes.size() * static_cast<std::size_t>(fanIn), 0);
    }
    Record r;
    r.id = OpId{p, nextTs[static_cast<std::size_t>(p)]++};
    r.kind = kind;
    return r;
  }
  void newOp(Record r) {
    post([this, r] { of(r.id.proc).onNewOp(r); });
  }
  void send(ProcId p, mpi::Rank to, mpi::Tag tag = 0) {
    Record r = rec(p, Kind::kSend);
    r.peer = to;
    r.tag = tag;
    newOp(r);
  }
  void recv(ProcId p, mpi::Rank from, mpi::Tag tag = 0) {
    Record r = rec(p, Kind::kRecv);
    r.peer = from;
    r.tag = tag;
    newOp(r);
  }
  void barrier(ProcId p) {
    Record r = rec(p, Kind::kCollective);
    r.collective = mpi::CollectiveKind::kBarrier;
    newOp(r);
  }
  void finalize(ProcId p) { newOp(rec(p, Kind::kFinalize)); }
  void matchInfo(OpId recvOp, mpi::Rank source, mpi::Tag tag = 0) {
    post([this, recvOp, source, tag] {
      of(recvOp.proc).onMatchInfo(trace::MatchInfoEvent{recvOp, source, tag});
    });
  }
};

TEST(DistributedTracker, SendRecvAcrossNodesAdvancesBoth) {
  Harness h(4, 2);  // procs {0,1} on node 0, {2,3} on node 1
  h.send(0, 2);
  h.recv(2, 0);
  h.finalize(0);
  h.finalize(2);
  h.finalize(1);
  h.finalize(3);
  EXPECT_TRUE(h.of(0).finishedProc(0));
  EXPECT_TRUE(h.of(2).finishedProc(2));
  // Protocol: exactly one passSend, one recvActive, one recvActiveAck.
  EXPECT_EQ(h.passSends, 1);
  EXPECT_EQ(h.recvActives, 1);
  EXPECT_EQ(h.recvActiveAcks, 1);
}

TEST(DistributedTracker, BlockingSendWaitsForRecvActive) {
  Harness h(4, 2);
  h.send(0, 2);
  EXPECT_EQ(h.of(0).current(0), 0u);  // send blocked: no recvActive yet
  h.recv(2, 0);
  // Receive matched and active -> recvActive -> ack -> both advance.
  EXPECT_EQ(h.of(0).current(0), 1u);
  EXPECT_EQ(h.of(2).current(2), 1u);
}

TEST(DistributedTracker, RecvBeforeSendAlsoCompletes) {
  Harness h(4, 2);
  h.recv(2, 0);
  EXPECT_EQ(h.of(2).current(2), 0u);
  h.send(0, 2);
  EXPECT_EQ(h.of(0).current(0), 1u);
  EXPECT_EQ(h.of(2).current(2), 1u);
}

TEST(DistributedTracker, SameNodeMatchingWorksViaLoopback) {
  Harness h(4, 4);  // single node hosts everyone
  h.send(0, 1);
  h.recv(1, 0);
  EXPECT_EQ(h.of(0).current(0), 1u);
  EXPECT_EQ(h.of(1).current(1), 1u);
}

TEST(DistributedTracker, TagMatchingFollowsTagsNotArrivalOrder) {
  Harness h(4, 2);
  // First send is non-blocking so cross-tag consumption order is legal.
  Record is = h.rec(0, Kind::kIsend);
  is.peer = 2;
  is.tag = 1;
  is.request = 0;
  h.newOp(is);
  h.send(0, 2, /*tag=*/2);
  // Receiver consumes tag 2 first, then tag 1: matching must pair by tag.
  h.recv(2, 0, /*tag=*/2);
  h.recv(2, 0, /*tag=*/1);
  EXPECT_EQ(h.of(0).current(0), 2u);
  EXPECT_EQ(h.of(2).current(2), 2u);
}

TEST(DistributedTracker, CrossTagBlockingSendsDeadlockConservatively) {
  // send(tag 1); send(tag 2) against recv(tag 2); recv(tag 1): with strict
  // (unbuffered) standard sends this is a real deadlock — the first send
  // waits for the second receive and vice versa.
  Harness h(4, 2);
  h.send(0, 2, /*tag=*/1);
  h.send(0, 2, /*tag=*/2);
  h.recv(2, 0, /*tag=*/2);
  h.recv(2, 0, /*tag=*/1);
  EXPECT_EQ(h.of(0).current(0), 0u);
  EXPECT_EQ(h.of(2).current(2), 0u);
  wfg::WaitForGraph graph(4);
  for (ProcId p = 0; p < 4; ++p) graph.setNode(h.of(p).waitConditions(p));
  const auto result = graph.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<ProcId>{0, 2}));
}

TEST(DistributedTracker, WildcardWaitsForMatchInfo) {
  Harness h(4, 2);
  h.send(0, 2);
  Record r = h.rec(2, Kind::kRecv);
  r.peer = mpi::kAnySource;
  r.tag = mpi::kAnyTag;
  const OpId recvId = r.id;
  h.newOp(r);
  // Without resolution, neither side advances (the match is unknown).
  EXPECT_EQ(h.of(0).current(0), 0u);
  EXPECT_EQ(h.of(2).current(2), 0u);
  h.matchInfo(recvId, /*source=*/0, /*tag=*/0);
  EXPECT_EQ(h.of(0).current(0), 1u);
  EXPECT_EQ(h.of(2).current(2), 1u);
}

TEST(DistributedTracker, BarrierAcrossNodesNeedsAck) {
  Harness h(4, 2);
  h.barrier(0);
  h.barrier(1);
  // Node 0 is ready (both hosted procs active) but the wave is incomplete.
  EXPECT_EQ(h.collectiveReadies, 1);
  EXPECT_EQ(h.of(0).current(0), 0u);
  h.barrier(2);
  h.barrier(3);
  EXPECT_EQ(h.collectiveReadies, 2);
  EXPECT_EQ(h.collectiveAcks, 1);
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(h.of(p).current(p), 1u);
}

TEST(DistributedTracker, SuccessiveBarrierWavesKeepOrder) {
  Harness h(4, 2);
  for (int wave = 0; wave < 3; ++wave) {
    for (ProcId p = 0; p < 4; ++p) h.barrier(p);
  }
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(h.of(p).current(p), 3u);
  EXPECT_EQ(h.collectiveAcks, 3);
}

TEST(DistributedTracker, IsendWaitCompletion) {
  Harness h(4, 2);
  Record isend = h.rec(0, Kind::kIsend);
  isend.peer = 2;
  isend.request = 0;
  h.newOp(isend);
  EXPECT_EQ(h.of(0).current(0), 1u);  // non-blocking: advances immediately
  Record wait = h.rec(0, Kind::kWait);
  wait.completes = {0};
  h.newOp(wait);
  EXPECT_EQ(h.of(0).current(0), 1u);  // Wait blocks: recv not reached
  h.recv(2, 0);
  EXPECT_EQ(h.of(0).current(0), 2u);  // recvActive marked the request reached
  EXPECT_EQ(h.of(2).current(2), 1u);
}

TEST(DistributedTracker, IrecvWaitCompletion) {
  Harness h(4, 2);
  Record irecv = h.rec(2, Kind::kIrecv);
  irecv.peer = 0;
  irecv.request = 0;
  h.newOp(irecv);
  Record wait = h.rec(2, Kind::kWait);
  wait.completes = {0};
  h.newOp(wait);
  EXPECT_EQ(h.of(2).current(2), 1u);  // blocked in Wait
  h.send(0, 2);
  // Irecv was already reached -> recvActive -> ack -> request reached.
  EXPECT_EQ(h.of(2).current(2), 2u);
  EXPECT_EQ(h.of(0).current(0), 1u);
}

TEST(DistributedTracker, WaitanyNeedsOneOfTwo) {
  Harness h(6, 2);
  Record ir1 = h.rec(0, Kind::kIrecv);
  ir1.peer = 2;
  ir1.request = 0;
  h.newOp(ir1);
  Record ir2 = h.rec(0, Kind::kIrecv);
  ir2.peer = 4;
  ir2.request = 1;
  h.newOp(ir2);
  Record waitany = h.rec(0, Kind::kWaitany);
  waitany.completes = {0, 1};
  h.newOp(waitany);
  EXPECT_EQ(h.of(0).current(0), 2u);  // blocked
  h.send(4, 0);  // only the second request's sender shows up
  EXPECT_EQ(h.of(0).current(0), 3u);
}

TEST(DistributedTracker, ProbeHandshakeDoesNotConsumeSend) {
  Harness h(4, 2);
  h.send(0, 2);
  Record probe = h.rec(2, Kind::kProbe);
  probe.peer = 0;
  h.newOp(probe);
  // Rule (2) for a probe: the matching send is active (l_0 = 0), so the
  // probe advances — but the send itself still waits for the real receive.
  EXPECT_EQ(h.of(2).current(2), 1u);
  EXPECT_EQ(h.of(0).current(0), 0u);  // send still blocked
  h.recv(2, 0);
  EXPECT_EQ(h.of(2).current(2), 2u);  // probe + recv both done
  EXPECT_EQ(h.of(0).current(0), 1u);
}

TEST(DistributedTracker, SendrecvBothHalves) {
  Harness h(4, 2);
  Record sr0 = h.rec(0, Kind::kSendrecv);
  sr0.peer = 2;
  sr0.recvPeer = 2;
  h.newOp(sr0);
  EXPECT_EQ(h.of(0).current(0), 0u);
  Record sr2 = h.rec(2, Kind::kSendrecv);
  sr2.peer = 0;
  sr2.recvPeer = 0;
  h.newOp(sr2);
  EXPECT_EQ(h.of(0).current(0), 1u);
  EXPECT_EQ(h.of(2).current(2), 1u);
}

TEST(DistributedTracker, RecvRecvDeadlockBlocksAndReportsConditions) {
  Harness h(4, 2);
  h.recv(0, 2);
  h.recv(2, 0);
  EXPECT_EQ(h.of(0).current(0), 0u);
  EXPECT_EQ(h.of(2).current(2), 0u);

  wfg::WaitForGraph graph(4);
  for (ProcId p = 0; p < 4; ++p) graph.setNode(h.of(p).waitConditions(p));
  graph.pruneCollectiveCoWaiters();
  const auto result = graph.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<ProcId>{0, 2}));
}

TEST(DistributedTracker, WildcardDeadlockProducesOrClauses) {
  const std::int32_t p = 8;
  Harness h(p, 2);
  for (ProcId i = 0; i < p; ++i) {
    Record r = h.rec(i, Kind::kRecv);
    r.peer = mpi::kAnySource;
    r.tag = mpi::kAnyTag;
    h.newOp(r);
  }
  wfg::WaitForGraph graph(p);
  for (ProcId i = 0; i < p; ++i) graph.setNode(h.of(i).waitConditions(i));
  const auto result = graph.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked.size(), static_cast<std::size_t>(p));
  EXPECT_EQ(result.arcCount, static_cast<std::uint64_t>(p) * (p - 1));
}

TEST(DistributedTracker, CollectiveConditionsPruneAtRoot) {
  Harness h(4, 2);
  h.barrier(0);
  h.barrier(1);
  h.barrier(2);
  // Proc 3 is stuck in a receive instead.
  h.recv(3, 0);
  wfg::WaitForGraph graph(4);
  for (ProcId p = 0; p < 4; ++p) graph.setNode(h.of(p).waitConditions(p));
  graph.pruneCollectiveCoWaiters();
  const auto result = graph.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked.size(), 4u);
  // After pruning, each barrier waiter targets only proc 3 (and proc 3
  // targets proc 0): 3 + 1 arcs.
  EXPECT_EQ(graph.arcCount(), 4u);
}

TEST(DistributedTracker, WindowStaysBoundedOnLongRuns) {
  Harness h(4, 2, TrackerConfig{});
  for (int iter = 0; iter < 200; ++iter) {
    h.send(0, 2);
    h.recv(2, 0);
  }
  h.finalize(0);
  h.finalize(2);
  EXPECT_TRUE(h.of(0).finishedProc(0));
  EXPECT_TRUE(h.of(2).finishedProc(2));
  // Retirement keeps windows tiny even over 200 iterations.
  EXPECT_LE(h.of(0).maxWindowSize(), 8u);
  EXPECT_LE(h.of(2).maxWindowSize(), 8u);
}

TEST(DistributedTracker, StopProgressFreezesTransitionsButHandlesMessages) {
  Harness h(4, 2);
  h.of(0).stopProgress();
  h.send(0, 2);
  h.recv(2, 0);
  // Node 0 is stopped: its send cannot take the transition even though the
  // recvActive message was delivered and processed.
  EXPECT_EQ(h.of(0).current(0), 0u);
  // The condition is visible: the process is NOT blocked (canAdvance holds).
  const auto cond = h.of(0).waitConditions(0);
  EXPECT_FALSE(cond.blocked);
  h.of(0).resumeProgress();
  EXPECT_EQ(h.of(0).current(0), 1u);
}

TEST(DistributedTracker, ActiveSendPeersForConsistentState) {
  Harness h(6, 2);
  h.send(0, 2);
  h.send(1, 4);
  const auto peers = h.of(0).activeSendPeerProcs();
  EXPECT_EQ(peers, (std::vector<ProcId>{2, 4}));
}

TEST(DistributedTracker, ConservativeSendBlocksFaithfulSendDoesNot) {
  TrackerConfig faithful;
  faithful.blockingModel = trace::BlockingModel::kImplementationFaithful;
  Harness h(4, 2, faithful);
  h.send(0, 2);  // small standard send: non-blocking under faithful model
  EXPECT_EQ(h.of(0).current(0), 1u);
}

// Regression: a collective on a proper sub-communicator whose group spans
// tracker nodes only partially. Node readiness must count the hosted *group
// members* (one per node here), not all hosted processes — counting every
// hosted process would stall the wave forever, since non-members never call
// the collective.
TEST(DistributedTracker, SubCommunicatorBarrierSplitAcrossNodes) {
  Harness h(4, 2);  // node 0 hosts {0,1}, node 1 hosts {2,3}
  const mpi::CommId sub = 42;
  h.comms.set(sub, {1, 2});
  // Non-members are busy elsewhere (blocked in an unrelated recv).
  h.recv(0, 3, /*tag=*/9);
  Record b1 = h.rec(1, Kind::kCollective);
  b1.collective = mpi::CollectiveKind::kBarrier;
  b1.comm = sub;
  h.newOp(b1);
  // Each node hosts exactly one member: node 0 is ready immediately, but
  // the root has only 1 of 2 group members — no ack yet, proc 1 blocked.
  EXPECT_EQ(h.collectiveReadies, 1);
  EXPECT_EQ(h.collectiveAcks, 0);
  EXPECT_EQ(h.of(1).current(1), 0u);
  Record b2 = h.rec(2, Kind::kCollective);
  b2.collective = mpi::CollectiveKind::kBarrier;
  b2.comm = sub;
  h.newOp(b2);
  EXPECT_EQ(h.collectiveReadies, 2);
  EXPECT_EQ(h.collectiveAcks, 1);
  EXPECT_EQ(h.of(1).current(1), 1u);
  EXPECT_EQ(h.of(2).current(2), 1u);
  // The non-member never participated and is still waiting on its recv.
  EXPECT_EQ(h.of(0).current(0), 0u);
}

// Two successive waves on the sub-communicator keep their order while a
// non-member on each node sits blocked; the ack must resolve by (comm,
// wave), not by whatever operation happens to be current on the node.
TEST(DistributedTracker, SubCommunicatorWavesWithBlockedNonMembers) {
  Harness h(6, 3);  // node 0 hosts {0,1,2}, node 1 hosts {3,4,5}
  const mpi::CommId sub = 9;
  h.comms.set(sub, {2, 3});
  h.recv(0, 4);  // non-member blocked on node 0
  h.recv(5, 1);  // non-member blocked on node 1
  for (int wave = 0; wave < 2; ++wave) {
    for (const ProcId member : {ProcId{2}, ProcId{3}}) {
      Record b = h.rec(member, Kind::kCollective);
      b.collective = mpi::CollectiveKind::kBarrier;
      b.comm = sub;
      h.newOp(b);
    }
  }
  EXPECT_EQ(h.collectiveAcks, 2);
  EXPECT_EQ(h.of(2).current(2), 2u);
  EXPECT_EQ(h.of(3).current(3), 2u);
  EXPECT_EQ(h.of(0).current(0), 0u);
  EXPECT_EQ(h.of(5).current(5), 0u);
}

// Regression: the consumed-send history bound. A wildcard probe whose
// MatchInfo arrives after more than `consumedHistory` sends were consumed
// on its channel can only resolve if the named send is still in history.
void runProbeAfterConsumedSends(const TrackerConfig& cfg, int traffic,
                                bool expectResolved,
                                std::uint64_t* evictions = nullptr) {
  Harness h(4, 2, cfg);
  // The wildcard probe posts first and stays pending (no MatchInfo yet).
  Record probe = h.rec(2, Kind::kProbe);
  probe.peer = mpi::kAnySource;
  probe.tag = mpi::kAnyTag;
  const OpId probeId = probe.id;
  h.newOp(probe);
  // `traffic` send/recv pairs on channel 0 -> 2 all match and retire.
  for (int i = 0; i < traffic; ++i) {
    h.send(0, 2, /*tag=*/100 + i);
    h.recv(2, 0, /*tag=*/100 + i);
  }
  EXPECT_EQ(h.of(2).current(2), 0u);  // probe still blocks the timeline
  // Late wildcard resolution: the probe had observed the FIRST send.
  h.matchInfo(probeId, /*source=*/0, /*tag=*/100);
  if (expectResolved) {
    EXPECT_GE(h.of(2).current(2), 1u) << "probe failed to resolve";
  } else {
    EXPECT_EQ(h.of(2).current(2), 0u) << "probe unexpectedly resolved";
  }
  if (evictions != nullptr && cfg.metrics != nullptr) {
    *evictions = cfg.metrics->counter("tracker/consumed_evictions").value();
  }
}

TEST(DistributedTracker, ProbeResolutionSurvivesHeavyTrafficWhenUnbounded) {
  TrackerConfig cfg;
  cfg.consumedHistory = 0;  // unbounded
  runProbeAfterConsumedSends(cfg, /*traffic=*/12, /*expectResolved=*/true);
}

TEST(DistributedTracker, ProbeResolutionSurvivesWithLargeEnoughBound) {
  TrackerConfig cfg;
  cfg.consumedHistory = 16;
  runProbeAfterConsumedSends(cfg, /*traffic=*/12, /*expectResolved=*/true);
}

TEST(DistributedTracker, DefaultBoundEvictsAndCountsInMetrics) {
  // Steady-state traffic with no probe in flight: every consuming receive
  // completes its recvActiveAck handshake, so the default bound (8) evicts
  // the excess history — and the metrics layer reports exactly how many
  // entries were dropped.
  support::MetricsRegistry metrics;
  TrackerConfig cfg;
  cfg.metrics = &metrics;
  Harness h(4, 2, cfg);
  for (int i = 0; i < 12; ++i) {
    h.send(0, 2, /*tag=*/100 + i);
    h.recv(2, 0, /*tag=*/100 + i);
  }
  EXPECT_EQ(h.of(2).current(2), 12u);
  EXPECT_EQ(metrics.counter("tracker/consumed_evictions").value(), 4u);
  EXPECT_EQ(metrics.counter("tracker/consumed_pinned").value(), 0u);
}

TEST(DistributedTracker, PendingProbePinsConsumedHistory) {
  // Regression for the eviction pinning fix: a wildcard probe posted before
  // heavy traffic blocks its process timeline, so the consuming receives
  // never finish their recvActiveAck handshake. The history entries they
  // produced stay pinned instead of being evicted — a late MatchInfo naming
  // the very first send must still resolve the probe. The old policy
  // (evict-oldest unconditionally) dropped that entry and wedged the probe.
  support::MetricsRegistry metrics;
  TrackerConfig cfg;
  cfg.metrics = &metrics;
  std::uint64_t evictions = 0;
  runProbeAfterConsumedSends(cfg, /*traffic=*/12, /*expectResolved=*/true,
                             &evictions);
  EXPECT_EQ(evictions, 0u);
  EXPECT_GT(metrics.counter("tracker/consumed_pinned").value(), 0u);
}

TEST(DistributedTracker, MetricsTrackMaxWindow) {
  support::MetricsRegistry metrics;
  TrackerConfig cfg;
  cfg.metrics = &metrics;
  Harness h(4, 2, cfg);
  h.recv(2, 0, 1);
  h.recv(2, 0, 2);
  h.send(0, 2, 1);
  h.send(0, 2, 2);
  EXPECT_GE(metrics.gauge("tracker/max_window").max(), 2);
}

}  // namespace
}  // namespace wst::waitstate

// Tests of the formal wait state transition system (paper §3), including the
// paper's worked examples (Figures 2(a), 2(b)/3, 4).
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trace/builder.hpp"
#include "waitstate/transition_system.hpp"

namespace wst::waitstate {
namespace {

using trace::Kind;
using trace::OpId;
using trace::TraceBuilder;

// Paper Figure 2(a): recv-recv deadlock.
trace::MatchedTrace recvRecvDeadlock() {
  TraceBuilder b(2);
  b.recv(0, 1);  // P0: Recv(from:1) — never matched
  b.send(0, 1);
  b.recv(1, 0);  // P1: Recv(from:0) — never matched
  b.send(1, 0);
  return b.take();
}

TEST(TransitionSystem, RecvRecvDeadlockBlocksBothProcesses) {
  const auto trace = recvRecvDeadlock();
  TransitionSystem ts(trace);
  EXPECT_EQ(ts.runToTerminal(), 0u);
  EXPECT_TRUE(ts.terminal());
  EXPECT_FALSE(ts.allFinished());
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0, 1}));
}

// Paper Figure 2(b)/Figure 3: wildcard receives, barrier, then send-send
// deadlock. Matching follows the execution illustrated in Figure 3: the
// first wildcard receive of process 1 matches the send of process 2.
trace::MatchedTrace figure3Trace() {
  TraceBuilder b(3);
  const auto s0 = b.send(0, 1);     // o_{0,0}
  const auto r10 = b.recv(1, mpi::kAnySource);  // o_{1,0}
  const auto r11 = b.recv(1, mpi::kAnySource);  // o_{1,1}
  const auto s2 = b.send(2, 1);     // o_{2,0}
  b.barrierAll();                   // o_{0,1}, o_{1,2}, o_{2,1}
  b.send(0, 1);                     // o_{0,2} — unmatched
  b.send(1, 2);                     // o_{1,3} — unmatched
  b.send(2, 0);                     // o_{2,2} — unmatched
  b.match(s2, r10);
  b.match(s0, r11);
  return b.take();
}

TEST(TransitionSystem, Figure3ReachesTerminalState232) {
  const auto trace = figure3Trace();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.terminal());
  // Paper: the terminal state is (2, 3, 2).
  EXPECT_EQ(ts.state(), (State{2, 3, 2}));
  EXPECT_FALSE(ts.allFinished());
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0, 1, 2}));
}

TEST(TransitionSystem, Figure3IntermediateState231BlocksOnlySenders) {
  // Paper §3.2: in state (2,3,1), processes 0 and 1 are blocked while
  // process 2 (still in the barrier) can advance.
  const auto trace = figure3Trace();
  TransitionSystem ts(trace);
  // Drive to exactly (2,3,1): advance 0 twice, 1 three times, 2 once.
  // Order matters only in that premises must hold; replicate the paper's
  // execution prefix.
  ts.advance(2);  // (0,0,1): send o_{2,0} matched recv is active
  ts.advance(1);  // (0,1,1)
  ts.advance(1);  // (0,2,1)
  ts.advance(0);  // (1,2,1)
  ts.advance(1);  // (1,3,1): barrier complete — all reached their barrier op
  ts.advance(0);  // (2,3,1)
  EXPECT_EQ(ts.state(), (State{2, 3, 1}));
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0, 1}));
  EXPECT_TRUE(ts.canAdvance(2));
}

TEST(TransitionSystem, PaperExampleExecutionSequence) {
  // The execution given in §3.1: (0,0,0) ->p2p (0,0,1) ->p2p (0,1,1)
  // ->p2p (0,2,1) ->p2p (1,2,1) ->coll (1,2,2) ->coll (2,2,2) ->coll (2,3,2).
  const auto trace = figure3Trace();
  TransitionSystem ts(trace);
  EXPECT_EQ(ts.applicableRule(2), Rule::kP2P);
  ts.advance(2);
  EXPECT_EQ(ts.state(), (State{0, 0, 1}));
  // In (0,0,1): rule 2 not applicable to o_{0,0} (its match o_{1,1} not
  // active), nor again to o_{2,0}; rule 3 not applicable to o_{2,1}.
  EXPECT_EQ(ts.applicableRule(0), Rule::kNone);
  EXPECT_EQ(ts.applicableRule(2), Rule::kNone);
  ts.advance(1);
  EXPECT_EQ(ts.state(), (State{0, 1, 1}));
  EXPECT_EQ(ts.applicableRule(0), Rule::kP2P);  // o_{1,1} now active
  ts.advance(1);
  ts.advance(0);
  EXPECT_EQ(ts.state(), (State{1, 2, 1}));
  // All three barrier ops active: rule 3 applies to each process.
  EXPECT_EQ(ts.applicableRule(0), Rule::kCollective);
  EXPECT_EQ(ts.applicableRule(1), Rule::kCollective);
  EXPECT_EQ(ts.applicableRule(2), Rule::kCollective);
  ts.advance(2);
  ts.advance(0);
  ts.advance(1);
  EXPECT_EQ(ts.state(), (State{2, 3, 2}));
  EXPECT_TRUE(ts.terminal());
}

TEST(TransitionSystem, CleanRunFinishesAllProcesses) {
  TraceBuilder b(2);
  const auto s = b.send(0, 1);
  const auto r = b.recv(1, 0);
  b.match(s, r);
  b.barrierAll();
  b.finalizeAll();
  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.terminal());
  EXPECT_TRUE(ts.allFinished());
  EXPECT_TRUE(ts.blockedProcs().empty());
}

TEST(TransitionSystem, NonBlockingOpsAlwaysAdvance) {
  TraceBuilder b(2);
  auto [is, isr] = b.isend(0, 1);
  (void)is;
  b.completion(0, Kind::kTest, {isr});
  b.finalize(0);
  b.finalize(1);
  // The Isend is never matched; Test and Isend are non-blocking and advance.
  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(TransitionSystem, WaitBlocksUntilCounterpartReached) {
  TraceBuilder b(2);
  auto [is, isReq] = b.isend(0, 1);
  const auto w = b.wait(0, isReq);
  (void)w;
  b.finalize(0);
  // P1 runs a non-blocking call first so its receive is not reached at L0.
  b.completion(1, Kind::kTest, {});
  const auto r = b.recv(1, 0);
  b.finalize(1);
  b.match(is, r);
  const auto trace = b.take();
  TransitionSystem ts(trace);
  // Initially: P0 can advance past the Isend (rule 1) but then blocks in
  // Wait until P1's receive is reached.
  EXPECT_EQ(ts.applicableRule(0), Rule::kNonBlocking);
  ts.advance(0);
  EXPECT_EQ(ts.applicableRule(0), Rule::kNone);  // Wait: recv not reached
  ts.advance(1);  // past the Test: the receive becomes active
  EXPECT_EQ(ts.applicableRule(0), Rule::kCompletionAll);
  EXPECT_EQ(ts.applicableRule(1), Rule::kP2P);  // recv premise: Isend reached
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(TransitionSystem, WaitallNeedsAllWaitanyNeedsOne) {
  TraceBuilder b(3);
  auto [i1, r1] = b.irecv(0, 1);
  auto [i2, r2] = b.irecv(0, 2);
  const auto wAll = b.completion(0, Kind::kWaitall, {r1, r2});
  (void)wAll;
  b.finalize(0);
  const auto s1 = b.send(1, 0);
  b.finalize(1);
  const auto s2 = b.send(2, 0);
  b.finalize(2);
  b.match(s1, i1);
  // s2 intentionally unmatched: i2 never completes.
  (void)s2;
  (void)i2;
  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_FALSE(ts.finished(0));  // Waitall blocked forever
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0, 2}));

  // Same trace with Waitany instead: one matched request suffices.
  TraceBuilder b2(3);
  auto [j1, q1] = b2.irecv(0, 1);
  auto [j2, q2] = b2.irecv(0, 2);
  (void)j2;
  b2.completion(0, Kind::kWaitany, {q1, q2});
  b2.finalize(0);
  const auto t1 = b2.send(1, 0);
  b2.finalize(1);
  b2.send(2, 0);
  b2.finalize(2);
  b2.match(t1, j1);
  const auto trace2 = b2.take();
  TransitionSystem ts2(trace2);
  ts2.runToTerminal();
  EXPECT_TRUE(ts2.finished(0));
}

TEST(TransitionSystem, ProbeAdvancesWhenSendReached) {
  TraceBuilder b(2);
  const auto pr = b.probe(0, 1);
  const auto rc = b.recv(0, 1);
  b.finalize(0);
  const auto s = b.send(1, 0);
  b.finalize(1);
  b.matchProbe(pr, s);
  b.match(s, rc);
  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(TransitionSystem, SendrecvExchangeAdvancesBothProcesses) {
  trace::MatchedTrace t(2);
  for (trace::ProcId p = 0; p < 2; ++p) {
    trace::Record sr;
    sr.id = OpId{p, 0};
    sr.kind = Kind::kSendrecv;
    sr.peer = 1 - p;
    sr.recvPeer = 1 - p;
    t.append(sr);
    trace::Record fin;
    fin.id = OpId{p, 1};
    fin.kind = Kind::kFinalize;
    t.append(fin);
  }
  // Each Sendrecv's send half matches the other's receive half.
  t.matchSendRecv(OpId{0, 0}, OpId{1, 0});
  t.matchSendRecv(OpId{1, 0}, OpId{0, 0});
  TransitionSystem ts(t);
  ts.runToTerminal();
  EXPECT_TRUE(ts.allFinished());
}

TEST(TransitionSystem, SendrecvBlocksWithoutReceiveHalfMatch) {
  trace::MatchedTrace t(2);
  trace::Record sr;
  sr.id = OpId{0, 0};
  sr.kind = Kind::kSendrecv;
  sr.peer = 1;
  sr.recvPeer = 1;
  t.append(sr);
  trace::Record recv;
  recv.id = OpId{1, 0};
  recv.kind = Kind::kRecv;
  recv.peer = 0;
  t.append(recv);
  // P1 receives P0's send half, but nobody sends to P0's receive half.
  t.matchSendRecv(OpId{0, 0}, OpId{1, 0});
  TransitionSystem ts(t);
  ts.runToTerminal();
  EXPECT_TRUE(ts.finished(1));   // plain receive got its message
  EXPECT_FALSE(ts.finished(0));  // receive half never satisfied
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0}));
}

TEST(TransitionSystem, CollectiveWaitsForAllParticipants) {
  TraceBuilder b(3);
  const auto wave = b.wave(mpi::kCommWorld, mpi::CollectiveKind::kBarrier, 3);
  const auto c0 = b.collective(0, mpi::CollectiveKind::kBarrier);
  const auto c1 = b.collective(1, mpi::CollectiveKind::kBarrier);
  b.addToWave(wave, c0);
  b.addToWave(wave, c1);
  // Process 2 never calls the barrier: it receives instead (blocked).
  b.recv(2, mpi::kAnySource);
  b.finalize(0);
  b.finalize(1);
  b.finalize(2);
  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  EXPECT_EQ(ts.blockedProcs(), (std::vector<trace::ProcId>{0, 1, 2}));
}

TEST(TransitionSystem, ImplementationFaithfulModelBuffersSmallSends) {
  // Send-send pattern: deadlock under conservative b, none under the
  // implementation-faithful model with buffering (paper §3.3).
  TraceBuilder b(2);
  const auto sa = b.send(0, 1);
  const auto ra = b.recv(0, 1);
  const auto sb = b.send(1, 0);
  const auto rb = b.recv(1, 0);
  b.finalize(0);
  b.finalize(1);
  b.match(sa, rb);
  b.match(sb, ra);

  TransitionSystem conservative(b.trace());
  conservative.runToTerminal();
  EXPECT_FALSE(conservative.allFinished());  // detected: unsafe program

  AnalysisConfig faithful;
  faithful.blockingModel = trace::BlockingModel::kImplementationFaithful;
  TransitionSystem relaxed(b.trace(), faithful);
  relaxed.runToTerminal();
  EXPECT_TRUE(relaxed.allFinished());
}

// Paper Figure 4: unexpected match. A non-synchronizing reduce lets the
// send of process 2 match the *first* wildcard receive of process 1.
TEST(TransitionSystem, Figure4UnexpectedMatchDetected) {
  TraceBuilder b(3);
  const auto s0 = b.send(0, 1);                    // o_{0,0}
  const auto r10 = b.recv(1, mpi::kAnySource);     // o_{1,0}
  const auto wave = b.wave(mpi::kCommWorld, mpi::CollectiveKind::kReduce, 3);
  const auto c0 = b.collective(0, mpi::CollectiveKind::kReduce, mpi::kCommWorld, 1);
  const auto c1 = b.collective(1, mpi::CollectiveKind::kReduce, mpi::kCommWorld, 1);
  const auto c2 = b.collective(2, mpi::CollectiveKind::kReduce, mpi::kCommWorld, 1);
  b.addToWave(wave, c0);
  b.addToWave(wave, c1);
  b.addToWave(wave, c2);
  const auto r11 = b.recv(1, mpi::kAnySource);     // o_{1,2}
  const auto s2 = b.send(2, 1);                    // o_{2,1}
  b.finalizeAll();
  // Observed execution (non-synchronizing reduce): process 2's send matched
  // the FIRST wildcard receive; process 0's send matched the second.
  b.match(s2, r10);
  b.match(s0, r11);

  const auto trace = b.take();
  TransitionSystem ts(trace);
  ts.runToTerminal();
  // Conservative b treats the reduce as synchronizing: process 1 is stuck in
  // its first wildcard receive whose matched send (o_{2,1}) comes after the
  // collective — the system cannot advance past its initial region.
  EXPECT_FALSE(ts.allFinished());
  const auto unexpected = ts.findUnexpectedMatches();
  ASSERT_EQ(unexpected.size(), 1u);
  EXPECT_EQ(unexpected[0].wildcardRecv, r10);
  EXPECT_EQ(unexpected[0].activeSendCandidate, s0);
  EXPECT_EQ(unexpected[0].matchedSend, s2);
}

TEST(TransitionSystem, ConfluenceRandomSchedulesReachSameTerminalState) {
  // Paper §3.1: the transition system is confluent — any maximal execution
  // reaches the same terminal state. Exercise with randomized schedules on
  // a mixed trace.
  TraceBuilder b(4);
  // Buffered-send ring exchange + barrier + partial deadlock at the end.
  std::vector<OpId> sends, recvs;
  for (trace::ProcId p = 0; p < 4; ++p) {
    sends.push_back(b.send(p, (p + 1) % 4, 0, mpi::SendMode::kBuffered));
    recvs.push_back(b.recv(p, (p + 3) % 4));
  }
  for (trace::ProcId p = 0; p < 4; ++p) {
    b.match(sends[static_cast<std::size_t>(p)],
            recvs[static_cast<std::size_t>((p + 1) % 4)]);
  }
  b.barrierAll();
  b.recv(0, 1);  // head-to-head recv deadlock between 0 and 1
  b.recv(1, 0);
  b.finalize(2);
  b.finalize(3);
  const auto trace = b.take();

  TransitionSystem reference(trace);
  reference.runToTerminal();
  const State expected = reference.state();
  // All procs stop at timestamp 3: procs 0/1 blocked in the final receive,
  // procs 2/3 at MPI_Finalize (the well-defined terminal operation).
  EXPECT_EQ(expected, (State{3, 3, 3, 3}));

  support::Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    TransitionSystem ts(trace);
    ts.runToTerminalRandomized(rng);
    EXPECT_EQ(ts.state(), expected) << "schedule round " << round;
  }
}

TEST(TransitionSystem, DeadlockPersistsInSuccessorStates) {
  // Monotonicity (paper §4): once blocked procs form a deadlock, further
  // transitions of other procs never unblock them.
  const auto trace = figure3Trace();
  TransitionSystem ts(trace);
  // Reach (2,3,1): processes 0 and 1 deadlocked, 2 still advancing.
  ts.advance(2);
  ts.advance(1);
  ts.advance(1);
  ts.advance(0);
  ts.advance(1);
  ts.advance(0);
  const auto blockedBefore = ts.blockedProcs();
  ts.advance(2);  // finish the barrier on process 2
  const auto blockedAfter = ts.blockedProcs();
  for (const auto proc : blockedBefore) {
    EXPECT_TRUE(std::find(blockedAfter.begin(), blockedAfter.end(), proc) !=
                blockedAfter.end());
  }
}

}  // namespace
}  // namespace wst::waitstate

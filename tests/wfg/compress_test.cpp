// Wait-for graph simplification (paper §6 future work).
#include <gtest/gtest.h>

#include "wfg/compress.hpp"

namespace wst::wfg {
namespace {

NodeConditions blockedOn(trace::ProcId proc, std::string description,
                         std::vector<std::vector<trace::ProcId>> clauses) {
  NodeConditions node;
  node.proc = proc;
  node.blocked = true;
  node.description = std::move(description);
  for (auto& targets : clauses) {
    Clause clause;
    clause.targets = std::move(targets);
    node.clauses.push_back(std::move(clause));
  }
  return node;
}

TEST(Compress, WildcardAllToAllCollapsesToOneClass) {
  // The paper's wildcard stress test: p ranks, each OR-waits on all others.
  const std::int32_t p = 64;
  WaitForGraph g(p);
  for (trace::ProcId i = 0; i < p; ++i) {
    std::vector<trace::ProcId> targets;
    for (trace::ProcId j = 0; j < p; ++j) {
      if (j != i) targets.push_back(j);
    }
    g.setNode(blockedOn(i, "Recv(from:ANY, tag:-1)", {targets}));
  }
  const CompressedGraph c = compress(g);
  ASSERT_EQ(c.classes.size(), 1u);
  EXPECT_EQ(c.classes[0].members.size(), static_cast<std::size_t>(p));
  ASSERT_EQ(c.arcs.size(), 1u);
  EXPECT_TRUE(c.arcs[0].allToAll);
  EXPECT_TRUE(c.arcs[0].orSemantics);
  EXPECT_EQ(c.arcs[0].multiplicity,
            static_cast<std::uint64_t>(p) * (p - 1));
  EXPECT_EQ(c.representedArcs, static_cast<std::uint64_t>(p) * (p - 1));
  // The compressed DOT is tiny compared to the p² original.
  EXPECT_LT(c.toDot().size(), 512u);
  EXPECT_NE(c.summary().find("Recv"), std::string::npos);
}

TEST(Compress, RingCycleCollapsesToSelfLoopClass) {
  const std::int32_t p = 16;
  WaitForGraph g(p);
  for (trace::ProcId i = 0; i < p; ++i) {
    g.setNode(blockedOn(i, "Send(to:x)", {{(i + 1) % p}}));
  }
  const CompressedGraph c = compress(g);
  ASSERT_EQ(c.classes.size(), 1u);
  ASSERT_EQ(c.arcs.size(), 1u);
  EXPECT_EQ(c.arcs[0].from, c.arcs[0].to);
  EXPECT_EQ(c.arcs[0].multiplicity, static_cast<std::uint64_t>(p));
  EXPECT_FALSE(c.arcs[0].allToAll);  // a cycle, not all-to-all
}

TEST(Compress, DifferentKindsStayInDifferentClasses) {
  WaitForGraph g(4);
  g.setNode(blockedOn(0, "Send(to:1)", {{1}}));
  g.setNode(blockedOn(1, "Recv(from:0)", {{0}}));
  g.setNode(blockedOn(2, "Send(to:3)", {{3}}));
  g.setNode(blockedOn(3, "Recv(from:2)", {{2}}));
  const CompressedGraph c = compress(g);
  EXPECT_EQ(c.classes.size(), 2u);  // "Send" class {0,2}, "Recv" class {1,3}
  EXPECT_EQ(c.representedArcs, 4u);
}

TEST(Compress, RefinementSplitsByTargetClass) {
  // Same kind, but 0/1 wait on Recv-class targets while 2 waits on a
  // Send-class target: refinement must split the Send class.
  WaitForGraph g(5);
  g.setNode(blockedOn(0, "Send(to:3)", {{3}}));
  g.setNode(blockedOn(1, "Send(to:4)", {{4}}));
  g.setNode(blockedOn(2, "Send(to:0)", {{0}}));  // waits on a *Send* class
  g.setNode(blockedOn(3, "Recv(from:0)", {{0}}));
  g.setNode(blockedOn(4, "Recv(from:1)", {{1}}));
  const CompressedGraph c = compress(g);
  // Classes: {0,1} (Send->Recv), {2} (Send->Send), {3,4} (Recv->Send).
  EXPECT_EQ(c.classes.size(), 3u);
}

TEST(Compress, RestrictToSubset) {
  WaitForGraph g(4);
  g.setNode(blockedOn(0, "Recv(from:1)", {{1}}));
  g.setNode(blockedOn(1, "Recv(from:0)", {{0}}));
  g.setNode(blockedOn(2, "Recv(from:3)", {{3}}));
  NodeConditions running;
  running.proc = 3;
  g.setNode(std::move(running));
  const CompressedGraph c = compress(g, {0, 1});
  std::size_t members = 0;
  for (const auto& cls : c.classes) members += cls.members.size();
  EXPECT_EQ(members, 2u);
  EXPECT_EQ(c.representedArcs, 2u);
}

TEST(Compress, EmptyGraphCompressesToNothing) {
  WaitForGraph g(3);
  const CompressedGraph c = compress(g);
  EXPECT_TRUE(c.classes.empty());
  EXPECT_TRUE(c.arcs.empty());
}

}  // namespace
}  // namespace wst::wfg

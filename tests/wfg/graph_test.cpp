// Wait-for graph construction and the release-fixpoint deadlock criterion.
#include <gtest/gtest.h>

#include "wfg/graph.hpp"
#include "wfg/report.hpp"

namespace wst::wfg {
namespace {

NodeConditions blockedOn(trace::ProcId proc,
                         std::vector<std::vector<trace::ProcId>> clauses) {
  NodeConditions node;
  node.proc = proc;
  node.blocked = true;
  for (auto& targets : clauses) {
    Clause clause;
    clause.targets = std::move(targets);
    node.clauses.push_back(std::move(clause));
  }
  return node;
}

NodeConditions running(trace::ProcId proc) {
  NodeConditions node;
  node.proc = proc;
  node.blocked = false;
  return node;
}

TEST(WaitForGraph, NoBlockedProcessesNoDeadlock) {
  WaitForGraph g(3);
  for (trace::ProcId p = 0; p < 3; ++p) g.setNode(running(p));
  const auto result = g.check();
  EXPECT_FALSE(result.deadlock);
  EXPECT_TRUE(result.deadlocked.empty());
}

TEST(WaitForGraph, TwoCycleIsDeadlock) {
  WaitForGraph g(2);
  g.setNode(blockedOn(0, {{1}}));
  g.setNode(blockedOn(1, {{0}}));
  const auto result = g.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<trace::ProcId>{0, 1}));
  EXPECT_EQ(result.cycle.size(), 2u);
  EXPECT_EQ(result.arcCount, 2u);
}

TEST(WaitForGraph, WaitingOnRunningProcessReleases) {
  WaitForGraph g(2);
  g.setNode(blockedOn(0, {{1}}));
  g.setNode(running(1));
  const auto result = g.check();
  EXPECT_FALSE(result.deadlock);
}

TEST(WaitForGraph, ChainReleasesTransitively) {
  WaitForGraph g(4);
  g.setNode(blockedOn(0, {{1}}));
  g.setNode(blockedOn(1, {{2}}));
  g.setNode(blockedOn(2, {{3}}));
  g.setNode(running(3));
  const auto result = g.check();
  EXPECT_FALSE(result.deadlock);
  EXPECT_GE(result.releaseRounds, 2u);  // needs multiple release rounds
}

TEST(WaitForGraph, OrClauseReleasedByAnyTarget) {
  WaitForGraph g(3);
  g.setNode(blockedOn(0, {{1, 2}}));  // waits for 1 OR 2
  g.setNode(blockedOn(1, {{0}}));     // deadlocked with nobody? waits on 0
  g.setNode(running(2));
  const auto result = g.check();
  // 2 is running, so 0's OR clause is satisfiable; 0 releases, then 1.
  EXPECT_FALSE(result.deadlock);
}

TEST(WaitForGraph, AndClausesNeedEveryClauseSatisfied) {
  WaitForGraph g(3);
  g.setNode(blockedOn(0, {{1}, {2}}));  // waits for 1 AND 2
  g.setNode(running(1));
  g.setNode(blockedOn(2, {{0}}));
  const auto result = g.check();
  // Clause {1} satisfied, clause {2} never: 0 and 2 deadlock.
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<trace::ProcId>{0, 2}));
}

TEST(WaitForGraph, WildcardAllToAllOrDeadlock) {
  // Paper's wildcard stress test: every process waits (OR) on all others —
  // p*(p-1) arcs, all deadlocked.
  const std::int32_t p = 32;
  WaitForGraph g(p);
  for (trace::ProcId i = 0; i < p; ++i) {
    std::vector<trace::ProcId> targets;
    for (trace::ProcId j = 0; j < p; ++j) {
      if (j != i) targets.push_back(j);
    }
    g.setNode(blockedOn(i, {targets}));
  }
  const auto result = g.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked.size(), static_cast<std::size_t>(p));
  EXPECT_EQ(result.arcCount, static_cast<std::uint64_t>(p) * (p - 1));
  EXPECT_FALSE(result.cycle.empty());
}

TEST(WaitForGraph, CycleWalkSkipsSatisfiedClauses) {
  // 0's first clause is an OR satisfied by the running process 3, but its
  // first *listed* target is the deadlocked 1. The representative-cycle walk
  // must not step through the satisfied clause (0 -> 1 is not a blocking
  // arc): the real cycle is 0 -> 2 -> 0 via the unsatisfied second clause.
  WaitForGraph g(4);
  g.setNode(blockedOn(0, {{1, 3}, {2}}));
  g.setNode(blockedOn(1, {{0}}));
  g.setNode(blockedOn(2, {{0}}));
  g.setNode(running(3));
  const auto result = g.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<trace::ProcId>{0, 1, 2}));
  EXPECT_EQ(result.cycle, (std::vector<trace::ProcId>{0, 2}));
}

TEST(WaitForGraph, EmptyClauseIsUnsatisfiable) {
  WaitForGraph g(2);
  NodeConditions stuck = blockedOn(0, {});
  stuck.clauses.push_back(Clause{});  // no targets: unprovidable condition
  g.setNode(std::move(stuck));
  g.setNode(running(1));
  const auto result = g.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked, (std::vector<trace::ProcId>{0}));
  EXPECT_TRUE(result.cycle.empty());  // blocked on nothing reachable
}

TEST(WaitForGraph, CollectiveCoWaitersArePruned) {
  // Three processes in the same barrier wave, one straggler (3) still
  // running. Without pruning, the co-waiters would form a false cycle.
  WaitForGraph g(4);
  for (trace::ProcId i = 0; i < 3; ++i) {
    NodeConditions node;
    node.proc = i;
    node.blocked = true;
    node.inCollective = true;
    node.collComm = 0;
    node.collWaveIndex = 7;
    for (trace::ProcId j = 0; j < 4; ++j) {
      if (j == i) continue;
      Clause clause;
      clause.targets.push_back(j);
      clause.type = ClauseType::kCollective;
      clause.comm = 0;
      clause.waveIndex = 7;
      node.clauses.push_back(std::move(clause));
    }
    g.setNode(std::move(node));
  }
  g.setNode(running(3));
  g.pruneCollectiveCoWaiters();
  const auto result = g.check();
  EXPECT_FALSE(result.deadlock);
  // After pruning, each blocked node waits only on the straggler.
  EXPECT_EQ(g.arcCount(), 3u);
}

TEST(WaitForGraph, CollectiveDeadlockWhenStragglerIsBlocked) {
  WaitForGraph g(3);
  for (trace::ProcId i = 0; i < 2; ++i) {
    NodeConditions node;
    node.proc = i;
    node.blocked = true;
    node.inCollective = true;
    node.collComm = 0;
    node.collWaveIndex = 0;
    for (trace::ProcId j = 0; j < 3; ++j) {
      if (j == i) continue;
      Clause clause;
      clause.targets.push_back(j);
      clause.type = ClauseType::kCollective;
      clause.comm = 0;
      clause.waveIndex = 0;
      node.clauses.push_back(std::move(clause));
    }
    g.setNode(std::move(node));
  }
  g.setNode(blockedOn(2, {{0}}));  // straggler waits on a barrier waiter
  g.pruneCollectiveCoWaiters();
  const auto result = g.check();
  EXPECT_TRUE(result.deadlock);
  EXPECT_EQ(result.deadlocked.size(), 3u);
}

TEST(WaitForGraph, DotOutputContainsBlockedNodesAndArcs) {
  WaitForGraph g(2);
  auto n0 = blockedOn(0, {{1}});
  n0.description = "Recv(from:1)";
  g.setNode(std::move(n0));
  auto n1 = blockedOn(1, {{0}});
  n1.description = "Recv(from:0)";
  g.setNode(std::move(n1));
  const std::string dot = g.toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  EXPECT_NE(dot.find("p1 -> p0"), std::string::npos);
  EXPECT_NE(dot.find("Recv(from:1)"), std::string::npos);
}

TEST(WaitForGraph, DotRestrictsToRequestedProcesses) {
  WaitForGraph g(3);
  g.setNode(blockedOn(0, {{1}}));
  g.setNode(blockedOn(1, {{0}}));
  g.setNode(blockedOn(2, {{0}}));
  const std::string dot = g.toDot({0, 1});
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  EXPECT_EQ(dot.find("p2"), std::string::npos);
}

TEST(WaitForGraph, WriteDotStreamsAndCountsBytes) {
  WaitForGraph g(2);
  g.setNode(blockedOn(0, {{1}}));
  g.setNode(blockedOn(1, {{0}}));
  std::uint64_t sunk = 0;
  const std::uint64_t bytes =
      g.writeDot([&](std::string_view s) { sunk += s.size(); });
  EXPECT_EQ(bytes, sunk);
  EXPECT_GT(bytes, 0u);
}

TEST(Report, SummaryAndHtmlForDeadlock) {
  WaitForGraph g(2);
  auto n0 = blockedOn(0, {{1}});
  n0.description = "Recv(from:1)";
  n0.clauses[0].reason = "waits for a send from rank 1";
  g.setNode(std::move(n0));
  g.setNode(blockedOn(1, {{0}}));
  const auto check = g.check();
  const auto report = makeReport(g, check);
  EXPECT_TRUE(report.deadlock);
  EXPECT_NE(report.summary.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(report.html.find("Recv(from:1)"), std::string::npos);
  EXPECT_NE(report.html.find("waits for a send from rank 1"),
            std::string::npos);
  EXPECT_GT(report.dotBytes, 0u);
}

TEST(Report, NoDeadlockSummary) {
  WaitForGraph g(2);
  g.setNode(running(0));
  g.setNode(running(1));
  const auto report = makeReport(g, g.check());
  EXPECT_FALSE(report.deadlock);
  EXPECT_EQ(report.summary, "No deadlock detected.");
  EXPECT_EQ(report.dotBytes, 0u);
}

}  // namespace
}  // namespace wst::wfg

// IncrementalWfg equivalence: for any sequence of per-round deltas, the
// persistent graph + warm-started check must match a from-scratch rebuild +
// cold check — same verdict, deadlock set, cycle, and DOT rendering.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "wfg/graph.hpp"
#include "wfg/incremental.hpp"

namespace wst::wfg {
namespace {

constexpr std::int32_t kProcs = 12;

NodeConditions runningNode(trace::ProcId p) {
  NodeConditions n;
  n.proc = p;
  n.blocked = false;
  n.description = "running";
  return n;
}

NodeConditions finishedNode(trace::ProcId p) {
  NodeConditions n;
  n.proc = p;
  n.blocked = false;
  n.description = "finished";
  n.finished = true;
  return n;
}

NodeConditions blockedP2p(trace::ProcId p, std::mt19937& rng) {
  NodeConditions n;
  n.proc = p;
  n.blocked = true;
  n.description = "Recv";
  std::uniform_int_distribution<int> clauseCount(1, 2);
  std::uniform_int_distribution<int> targetCount(1, 3);
  std::uniform_int_distribution<trace::ProcId> target(0, kProcs - 1);
  const int clauses = clauseCount(rng);
  for (int c = 0; c < clauses; ++c) {
    Clause clause;
    clause.reason = "waits";
    const int targets = targetCount(rng);
    for (int t = 0; t < targets; ++t) {
      trace::ProcId other = target(rng);
      if (other == p) other = (other + 1) % kProcs;
      clause.targets.push_back(other);
    }
    n.clauses.push_back(std::move(clause));
  }
  return n;
}

NodeConditions blockedCollective(trace::ProcId p, std::uint32_t wave) {
  NodeConditions n;
  n.proc = p;
  n.blocked = true;
  n.description = "Barrier";
  n.inCollective = true;
  n.collComm = 0;
  n.collWaveIndex = wave;
  Clause clause;
  clause.type = ClauseType::kCollective;
  clause.comm = 0;
  clause.waveIndex = wave;
  clause.reason = "collective";
  for (trace::ProcId t = 0; t < kProcs; ++t) {
    if (t != p) clause.targets.push_back(t);
  }
  n.clauses.push_back(std::move(clause));
  return n;
}

NodeConditions randomNode(trace::ProcId p, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 5);
  switch (kind(rng)) {
    case 0: return finishedNode(p);
    case 1:
    case 2: return runningNode(p);
    case 3: {
      std::uniform_int_distribution<std::uint32_t> wave(0, 2);
      return blockedCollective(p, wave(rng));
    }
    default: return blockedP2p(p, rng);
  }
}

std::string checkSignature(const WaitForGraph& graph, const CheckResult& r) {
  std::string sig = r.deadlock ? "D" : "-";
  sig += "|deadlocked:";
  for (const trace::ProcId p : r.deadlocked) sig += std::to_string(p) + ",";
  sig += "|cycle:";
  for (const trace::ProcId p : r.cycle) sig += std::to_string(p) + ",";
  sig += "|dot:";
  sig += graph.toDot(r.deadlocked);
  return sig;
}

/// Distinct (comm, wave) pairs among currently blocked collective nodes —
/// the exact number of live entries waveMembers_ may hold.
std::size_t liveWaveCount(const std::vector<NodeConditions>& latest) {
  std::set<std::pair<mpi::CommId, std::uint32_t>> waves;
  for (const NodeConditions& n : latest) {
    if (n.blocked && n.inCollective) {
      waves.emplace(n.collComm, n.collWaveIndex);
    }
  }
  return waves.size();
}

TEST(IncrementalWfg, RandomDeltaSequencesMatchColdRebuild) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(seed);
    IncrementalWfg inc(kProcs, /*warmStartThreshold=*/1.0);
    std::vector<NodeConditions> latest(kProcs);
    // First round stages everyone.
    for (trace::ProcId p = 0; p < kProcs; ++p) {
      latest[static_cast<std::size_t>(p)] = randomNode(p, rng);
      inc.stage(latest[static_cast<std::size_t>(p)]);
    }
    inc.commit();
    std::uniform_int_distribution<int> deltaSize(0, kProcs / 2);
    std::uniform_int_distribution<trace::ProcId> pick(0, kProcs - 1);
    for (int round = 0; round < 12; ++round) {
      std::vector<char> staged(kProcs, 0);
      const int changes = deltaSize(rng);
      for (int c = 0; c < changes; ++c) {
        const trace::ProcId p = pick(rng);
        if (staged[static_cast<std::size_t>(p)]) continue;
        staged[static_cast<std::size_t>(p)] = 1;
        latest[static_cast<std::size_t>(p)] = randomNode(p, rng);
        inc.stage(latest[static_cast<std::size_t>(p)]);
      }
      const auto result = inc.commit();
      WaitForGraph cold = inc.buildFullGraph();
      const CheckResult coldCheck = cold.check();
      EXPECT_EQ(checkSignature(inc.graph(), result.check),
                checkSignature(cold, coldCheck))
          << "seed=" << seed << " round=" << round
          << " warm=" << result.warmStart;
      // Emptied wave entries must be erased: the map holds exactly the live
      // waves, so long runs cannot grow it without bound.
      EXPECT_EQ(inc.waveEntryCount(), liveWaveCount(latest))
          << "seed=" << seed << " round=" << round;
    }
  }
}

TEST(IncrementalWfg, FinishedCountIgnoresDescriptionDrift) {
  // finishedCount must follow the first-class flag, not the label: a
  // relabeled description neither adds nor removes finished processes.
  IncrementalWfg inc(2, 1.0);
  NodeConditions drifted = runningNode(0);
  drifted.description = "finished";  // label says finished, flag says no
  NodeConditions flagged = finishedNode(1);
  flagged.description = "done (finalized)";  // label drifted, flag says yes
  inc.stage(drifted);
  inc.stage(flagged);
  inc.commit();
  EXPECT_EQ(inc.finishedCount(), 1u);
}

TEST(IncrementalWfg, EmptyDeltaRoundKeepsVerdict) {
  std::mt19937 rng(42);
  IncrementalWfg inc(kProcs, 1.0);
  for (trace::ProcId p = 0; p < kProcs; ++p) inc.stage(blockedP2p(p, rng));
  const auto first = inc.commit();
  const auto second = inc.commit();  // no staged nodes at all
  EXPECT_EQ(second.changed, 0u);
  EXPECT_TRUE(second.warmStart);
  EXPECT_EQ(first.check.deadlock, second.check.deadlock);
  EXPECT_EQ(first.check.deadlocked, second.check.deadlocked);
  EXPECT_EQ(first.check.cycle, second.check.cycle);
}

TEST(IncrementalWfg, UnblockReleasesDependentChain) {
  // 0 <- 1 <- 2 all blocked in a chain rooted at a blocked 0; when 0 turns
  // out to be running in the next round, the whole chain must release even
  // though 1 and 2 were not re-gathered.
  IncrementalWfg inc(3, 1.0);
  NodeConditions n0;
  n0.proc = 0;
  n0.blocked = true;
  n0.description = "Recv";
  Clause c0;
  c0.targets = {1};
  n0.clauses.push_back(c0);
  NodeConditions n1 = n0;
  n1.proc = 1;
  n1.clauses[0].targets = {0};
  NodeConditions n2 = n0;
  n2.proc = 2;
  n2.clauses[0].targets = {1};
  inc.stage(n0);
  inc.stage(n1);
  inc.stage(n2);
  const auto first = inc.commit();
  EXPECT_TRUE(first.check.deadlock);
  ASSERT_EQ(first.check.deadlocked.size(), 3u);

  inc.stage(runningNode(0));
  const auto second = inc.commit();
  EXPECT_FALSE(second.check.deadlock);
  EXPECT_TRUE(second.check.deadlocked.empty());
  EXPECT_TRUE(second.warmStart);
}

TEST(IncrementalWfg, WarmSeedInvalidationCoversJustifierChanges) {
  // 2 was released because 1 was released because 0 was running. When 0
  // becomes blocked on 2 the old justifications are stale: the seeded check
  // must not carry 1/2's release forward blindly.
  IncrementalWfg inc(3, 1.0);
  NodeConditions n1;
  n1.proc = 1;
  n1.blocked = true;
  n1.description = "Recv";
  Clause c;
  c.targets = {0};
  n1.clauses.push_back(c);
  NodeConditions n2 = n1;
  n2.proc = 2;
  n2.clauses[0].targets = {1};
  inc.stage(runningNode(0));
  inc.stage(n1);
  inc.stage(n2);
  const auto first = inc.commit();
  EXPECT_FALSE(first.check.deadlock);

  NodeConditions n0;
  n0.proc = 0;
  n0.blocked = true;
  n0.description = "Recv";
  Clause c0;
  c0.targets = {2};
  n0.clauses.push_back(c0);
  inc.stage(n0);
  const auto second = inc.commit();
  WaitForGraph cold = inc.buildFullGraph();
  const CheckResult coldCheck = cold.check();
  EXPECT_EQ(second.check.deadlock, coldCheck.deadlock);
  EXPECT_EQ(second.check.deadlocked, coldCheck.deadlocked);
  EXPECT_TRUE(second.check.deadlock);  // 0 -> 2 -> 1 -> 0 cycle
}

TEST(IncrementalWfg, ThresholdForcesFullRebuild) {
  std::mt19937 rng(7);
  IncrementalWfg inc(kProcs, /*warmStartThreshold=*/0.25);
  for (trace::ProcId p = 0; p < kProcs; ++p) inc.stage(randomNode(p, rng));
  const auto first = inc.commit();
  EXPECT_TRUE(first.fullRebuild);

  // Small delta: warm start. Big delta: full rebuild fallback.
  inc.stage(randomNode(0, rng));
  EXPECT_TRUE(inc.commit().warmStart);
  for (trace::ProcId p = 0; p < 6; ++p) inc.stage(randomNode(p, rng));
  const auto big = inc.commit();
  EXPECT_TRUE(big.fullRebuild);
  EXPECT_FALSE(big.warmStart);
}

TEST(IncrementalWfg, FinishedCountTracksLatestConditions) {
  IncrementalWfg inc(4, 1.0);
  inc.stage(finishedNode(0));
  inc.stage(runningNode(1));
  inc.stage(runningNode(2));
  inc.stage(runningNode(3));
  inc.commit();
  EXPECT_EQ(inc.finishedCount(), 1u);
  inc.stage(finishedNode(1));
  inc.stage(finishedNode(2));
  inc.commit();
  EXPECT_EQ(inc.finishedCount(), 3u);
  inc.stage(runningNode(1));  // a process can only *gain* finished in MPI,
  inc.commit();               // but the container must track any update
  EXPECT_EQ(inc.finishedCount(), 2u);
}

}  // namespace
}  // namespace wst::wfg

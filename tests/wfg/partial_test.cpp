// Hierarchical boundary-condensation check ≡ centralized check: for any
// wait-for graph and any contiguous partition of processes into subtrees,
// condenseLeaf + condenseMerge + resolveAtRoot must agree with the full
// WaitForGraph::check() on verdict, released set, and deadlocked set —
// including the all-local (one leaf) and all-boundary (singleton leaves)
// extremes.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "wfg/graph.hpp"
#include "wfg/partial.hpp"

namespace wst::wfg {
namespace {

NodeConditions running(trace::ProcId p) {
  NodeConditions n;
  n.proc = p;
  n.blocked = false;
  n.description = "running";
  return n;
}

NodeConditions finished(trace::ProcId p) {
  NodeConditions n = running(p);
  n.description = "finished";
  n.finished = true;
  return n;
}

NodeConditions blockedOn(trace::ProcId p,
                         std::vector<std::vector<trace::ProcId>> clauses) {
  NodeConditions n;
  n.proc = p;
  n.blocked = true;
  n.description = "Recv";
  for (auto& targets : clauses) {
    Clause clause;
    clause.targets = std::move(targets);
    n.clauses.push_back(std::move(clause));
  }
  return n;
}

/// Synthetic idiom: one group-wide OR collective clause (incremental_test).
NodeConditions blockedCollectiveGroup(trace::ProcId p, mpi::CommId comm,
                                      std::uint32_t wave,
                                      trace::ProcId procCount) {
  NodeConditions n;
  n.proc = p;
  n.blocked = true;
  n.description = "Barrier";
  n.inCollective = true;
  n.collComm = comm;
  n.collWaveIndex = wave;
  Clause clause;
  clause.type = ClauseType::kCollective;
  clause.comm = comm;
  clause.waveIndex = wave;
  for (trace::ProcId t = 0; t < procCount; ++t) {
    if (t != p) clause.targets.push_back(t);
  }
  n.clauses.push_back(std::move(clause));
  return n;
}

/// Real-producer idiom: one single-target collective clause per member.
NodeConditions blockedCollectiveSingles(trace::ProcId p, mpi::CommId comm,
                                        std::uint32_t wave,
                                        trace::ProcId procCount) {
  NodeConditions n;
  n.proc = p;
  n.blocked = true;
  n.description = "Barrier";
  n.inCollective = true;
  n.collComm = comm;
  n.collWaveIndex = wave;
  for (trace::ProcId t = 0; t < procCount; ++t) {
    if (t == p) continue;
    Clause clause;
    clause.type = ClauseType::kCollective;
    clause.comm = comm;
    clause.waveIndex = wave;
    clause.targets.push_back(t);
    n.clauses.push_back(std::move(clause));
  }
  return n;
}

NodeConditions blockedWildcard(trace::ProcId p, trace::ProcId procCount) {
  std::vector<trace::ProcId> targets;
  for (trace::ProcId t = 0; t < procCount; ++t) {
    if (t != p) targets.push_back(t);
  }
  return blockedOn(p, {std::move(targets)});
}

/// Drive the full hierarchy: split [0, p) at `cuts`, condense each leaf,
/// merge groups of `arity` siblings level by level, resolve at the root.
HierarchicalResult hierCheck(const std::vector<NodeConditions>& conds,
                             const std::vector<trace::ProcId>& cuts,
                             std::size_t arity) {
  const auto p = static_cast<trace::ProcId>(conds.size());
  std::vector<Condensation> level;
  trace::ProcId lo = 0;
  const auto leaf = [&](trace::ProcId hi) {
    std::vector<NodeConditions> slice(
        conds.begin() + lo, conds.begin() + static_cast<std::ptrdiff_t>(hi));
    level.push_back(condenseLeaf(slice, lo, hi));
    lo = hi;
  };
  for (const trace::ProcId cut : cuts) leaf(cut);
  leaf(p);
  while (level.size() > arity) {
    std::vector<Condensation> next;
    for (std::size_t i = 0; i < level.size(); i += arity) {
      const std::size_t end = std::min(i + arity, level.size());
      next.push_back(condenseMerge(
          {level.begin() + static_cast<std::ptrdiff_t>(i),
           level.begin() + static_cast<std::ptrdiff_t>(end)}));
    }
    level = std::move(next);
  }
  return resolveAtRoot(level);
}

void expectMatchesCentralized(const std::vector<NodeConditions>& conds,
                              const HierarchicalResult& hier,
                              const std::string& context) {
  WaitForGraph g(static_cast<std::int32_t>(conds.size()));
  for (const auto& c : conds) g.setNode(c);
  g.pruneCollectiveCoWaiters();
  const CheckResult ref = g.check();
  EXPECT_EQ(hier.deadlock, ref.deadlock) << context;
  EXPECT_EQ(hier.deadlocked, ref.deadlocked) << context;
  std::vector<char> refReleased(conds.size(), 1);
  for (const trace::ProcId d : ref.deadlocked) {
    refReleased[static_cast<std::size_t>(d)] = 0;
  }
  EXPECT_EQ(hier.released, refReleased) << context;
}

TEST(PartialWfg, TwoCycleAcrossSplitBoundary) {
  std::vector<NodeConditions> conds = {blockedOn(0, {{3}}), running(1),
                                       running(2), blockedOn(3, {{0}})};
  const auto hier = hierCheck(conds, {2}, 2);
  EXPECT_TRUE(hier.deadlock);
  EXPECT_EQ(hier.deadlocked, (std::vector<trace::ProcId>{0, 3}));
  expectMatchesCentralized(conds, hier, "two-cycle across split");
}

TEST(PartialWfg, ChainReleasesAcrossSingletonLeaves) {
  std::vector<NodeConditions> conds = {blockedOn(0, {{1}}), blockedOn(1, {{2}}),
                                       blockedOn(2, {{3}}), running(3)};
  const auto hier = hierCheck(conds, {1, 2, 3}, 2);  // all-boundary extreme
  EXPECT_FALSE(hier.deadlock);
  expectMatchesCentralized(conds, hier, "chain, singleton leaves");
}

TEST(PartialWfg, RingCondensesToOneUnitPerSubtree) {
  // A blocked ring is a chain inside every subtree; the cycle only closes at
  // the root. Chain absorption must forward one boundary node per subtree.
  const trace::ProcId p = 8;
  std::vector<NodeConditions> conds;
  for (trace::ProcId i = 0; i < p; ++i) {
    conds.push_back(blockedOn(i, {{(i + 1) % p}}));
  }
  const auto hier = hierCheck(conds, {2, 4, 6}, 2);
  EXPECT_TRUE(hier.deadlock);
  EXPECT_EQ(hier.deadlocked.size(), static_cast<std::size_t>(p));
  EXPECT_EQ(hier.boundaryNodes, 2u);  // one per root child
  expectMatchesCentralized(conds, hier, "ring");
}

TEST(PartialWfg, WildcardKnotCollapsesPerSubtree) {
  // Paper Figure 10: every process waits (OR) on all others — p*(p-1) arcs.
  // Each leaf's processes form one pure-OR SCC; the root must only see one
  // summary node per child with interval-condensed targets.
  const trace::ProcId p = 16;
  std::vector<NodeConditions> conds;
  for (trace::ProcId i = 0; i < p; ++i) {
    conds.push_back(blockedWildcard(i, p));
  }
  const auto hier = hierCheck(conds, {4, 8, 12}, 4);
  EXPECT_TRUE(hier.deadlock);
  EXPECT_EQ(hier.deadlocked.size(), static_cast<std::size_t>(p));
  EXPECT_EQ(hier.boundaryNodes, 4u);       // one summary node per child
  EXPECT_LE(hier.boundaryArcs, 8u);        // ≤ 2 runs each (complement)
  EXPECT_FALSE(hier.cycle.empty());        // reps form a knot at the root
  expectMatchesCentralized(conds, hier, "wildcard all-to-all");
}

TEST(PartialWfg, SatisfiedOrClauseDoesNotHideDeadlock) {
  // 0's first clause is satisfied by the running 3, but its second clause
  // waits on the deadlocked 1<->2 pair: 0 must still deadlock, and the
  // satisfied clause must not leak into the boundary condensation.
  std::vector<NodeConditions> conds = {
      blockedOn(0, {{3, 1}, {2}}), blockedOn(1, {{2}}), blockedOn(2, {{1}}),
      running(3)};
  for (const auto& cuts :
       std::vector<std::vector<trace::ProcId>>{{}, {1, 2, 3}, {2}}) {
    const auto hier = hierCheck(conds, cuts, 2);
    EXPECT_TRUE(hier.deadlock);
    EXPECT_EQ(hier.deadlocked, (std::vector<trace::ProcId>{0, 1, 2}));
    expectMatchesCentralized(conds, hier, "satisfied OR clause");
  }
}

TEST(PartialWfg, CollectiveWavePrunesAcrossSubtreeBoundary) {
  // Three same-wave co-waiters split across leaves plus one straggler: the
  // cross-boundary co-waiter targets must be erased at the merge level, not
  // mistaken for blockers.
  const trace::ProcId p = 4;
  std::vector<NodeConditions> conds;
  for (trace::ProcId i = 0; i < 3; ++i) {
    conds.push_back(blockedCollectiveSingles(i, 0, 7, p));
  }
  conds.push_back(running(3));
  for (const auto& cuts :
       std::vector<std::vector<trace::ProcId>>{{2}, {1, 2, 3}, {}}) {
    const auto hier = hierCheck(conds, cuts, 2);
    EXPECT_FALSE(hier.deadlock);
    expectMatchesCentralized(conds, hier, "collective co-waiter pruning");
  }
}

TEST(PartialWfg, CollectiveDeadlockWithBlockedStraggler) {
  const trace::ProcId p = 3;
  std::vector<NodeConditions> conds;
  for (trace::ProcId i = 0; i < 2; ++i) {
    conds.push_back(blockedCollectiveSingles(i, 0, 0, p));
  }
  conds.push_back(blockedOn(2, {{0}}));  // straggler waits on a waiter
  for (const auto& cuts :
       std::vector<std::vector<trace::ProcId>>{{1}, {2}, {1, 2}}) {
    const auto hier = hierCheck(conds, cuts, 2);
    EXPECT_TRUE(hier.deadlock);
    EXPECT_EQ(hier.deadlocked.size(), 3u);
    expectMatchesCentralized(conds, hier, "collective deadlock");
  }
}

TEST(PartialWfg, EmptyClauseIsUnsatisfiableInAnySplit) {
  std::vector<NodeConditions> conds;
  NodeConditions stuck = blockedOn(0, {});
  stuck.clauses.push_back(Clause{});  // no targets: unprovidable condition
  conds.push_back(std::move(stuck));
  conds.push_back(running(1));
  for (const auto& cuts : std::vector<std::vector<trace::ProcId>>{{}, {1}}) {
    const auto hier = hierCheck(conds, cuts, 2);
    EXPECT_TRUE(hier.deadlock);
    EXPECT_EQ(hier.deadlocked, (std::vector<trace::ProcId>{0}));
    expectMatchesCentralized(conds, hier, "empty clause");
  }
}

TEST(PartialWfg, RandomizedEquivalence) {
  for (std::uint32_t seed = 0; seed < 80; ++seed) {
    std::mt19937 rng(seed);
    const trace::ProcId p = 4 + static_cast<trace::ProcId>(seed % 21);
    std::uniform_int_distribution<int> kind(0, 9);
    std::uniform_int_distribution<trace::ProcId> anyProc(0, p - 1);
    std::uniform_int_distribution<int> clauseCount(1, 3);
    std::uniform_int_distribution<int> targetCount(1, 4);
    std::uniform_int_distribution<std::uint32_t> wave(0, 2);
    std::uniform_int_distribution<int> comm(0, 1);

    std::vector<NodeConditions> conds;
    for (trace::ProcId i = 0; i < p; ++i) {
      switch (kind(rng)) {
        case 0:
          conds.push_back(finished(i));
          break;
        case 1:
        case 2:
          conds.push_back(running(i));
          break;
        case 3:
          conds.push_back(blockedCollectiveGroup(i, comm(rng), wave(rng), p));
          break;
        case 4:
          conds.push_back(
              blockedCollectiveSingles(i, comm(rng), wave(rng), p));
          break;
        case 5:
          conds.push_back(blockedWildcard(i, p));
          break;
        default: {
          std::vector<std::vector<trace::ProcId>> clauses;
          const int cc = clauseCount(rng);
          for (int c = 0; c < cc; ++c) {
            std::vector<trace::ProcId> targets;
            const int tc = targetCount(rng);
            for (int t = 0; t < tc; ++t) {
              targets.push_back(anyProc(rng));  // self-targets allowed
            }
            clauses.push_back(std::move(targets));
          }
          conds.push_back(blockedOn(i, std::move(clauses)));
          break;
        }
      }
    }

    // Three partition styles: all-local, all-boundary, random cuts.
    std::vector<std::vector<trace::ProcId>> splits;
    splits.push_back({});
    std::vector<trace::ProcId> singletons;
    for (trace::ProcId i = 1; i < p; ++i) singletons.push_back(i);
    splits.push_back(std::move(singletons));
    std::vector<trace::ProcId> cuts;
    for (trace::ProcId i = 1; i < p; ++i) {
      if (std::uniform_int_distribution<int>(0, 2)(rng) == 0) {
        cuts.push_back(i);
      }
    }
    splits.push_back(std::move(cuts));

    for (std::size_t s = 0; s < splits.size(); ++s) {
      const std::size_t arity =
          2 + static_cast<std::size_t>(
                  std::uniform_int_distribution<int>(0, 2)(rng));
      const auto hier = hierCheck(conds, splits[s], arity);
      expectMatchesCentralized(
          conds, hier,
          "seed=" + std::to_string(seed) + " split=" + std::to_string(s) +
              " p=" + std::to_string(p));
    }
  }
}

}  // namespace
}  // namespace wst::wfg

// Workload sanity: every shipped workload runs (or deadlocks) as documented.
#include <gtest/gtest.h>

#include "must/harness.hpp"
#include "workloads/spec.hpp"
#include "workloads/stress.hpp"

namespace wst::workloads {
namespace {

TEST(Stress, CyclicExchangeCompletesCleanly) {
  StressParams params;
  params.iterations = 20;
  const auto result = must::runWithTool(8, mpi::RuntimeConfig{},
                                        must::ToolConfig{.fanIn = 4},
                                        cyclicExchange(params));
  EXPECT_TRUE(result.allFinalized);
  EXPECT_FALSE(result.deadlockReported);
  // 20 sendrecv + 2 barriers + finalize per rank.
  EXPECT_EQ(result.appCalls, 8u * 23u);
}

TEST(Stress, UnsafeCyclicExchangeFlagged) {
  StressParams params;
  params.iterations = 5;
  params.barrierEvery = 0;
  const auto result = must::runWithTool(4, mpi::RuntimeConfig{},
                                        must::ToolConfig{.fanIn = 2},
                                        unsafeCyclicExchange(params));
  EXPECT_TRUE(result.allFinalized);  // buffering hides it at runtime
  EXPECT_TRUE(result.deadlockReported);
}

TEST(Stress, WildcardDeadlockBlocksEveryRank) {
  const auto result = must::runWithTool(6, mpi::RuntimeConfig{},
                                        must::ToolConfig{.fanIn = 2},
                                        wildcardDeadlock());
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 6u);
  EXPECT_EQ(result.report->check.arcCount, 30u);  // 6 * 5
}

TEST(Stress, RecvRecvDeadlockPairs) {
  const auto result = must::runWithTool(4, mpi::RuntimeConfig{},
                                        must::ToolConfig{.fanIn = 2},
                                        recvRecvDeadlock());
  EXPECT_FALSE(result.allFinalized);
  ASSERT_TRUE(result.deadlockReported);
  EXPECT_EQ(result.report->check.deadlocked.size(), 4u);
}

TEST(Spec, SuiteHasTwelveApps) {
  const auto suite = specSuite();
  EXPECT_EQ(suite.size(), 12u);
  int excluded = 0;
  for (const SpecApp& app : suite) excluded += app.excludedFromAverage;
  EXPECT_EQ(excluded, 2);  // 126.lammps and 128.GAPgeofem, as in the paper
  EXPECT_NE(findSpecApp("121.pop2"), nullptr);
  EXPECT_NE(findSpecApp("137.lu"), nullptr);
  EXPECT_EQ(findSpecApp("999.unknown"), nullptr);
}

class SpecAppTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpecAppTest, RunsUnderToolAtSmallScale) {
  const SpecApp& app = specSuite()[GetParam()];
  SpecScale scale;
  scale.iterations = 4;
  scale.computeScale = 0.05;  // keep virtual runtimes tiny for the test
  mpi::RuntimeConfig mpiCfg;
  mpiCfg.eagerQueueLimit = 32;
  mpiCfg.unexpectedScanPenalty = 500;
  const auto result = must::runWithTool(16, mpiCfg,
                                        must::ToolConfig{.fanIn = 4},
                                        app.make(scale));
  // Every app completes at runtime (the simulated MPI buffers); only the
  // lammps proxy is flagged by the conservative analysis.
  EXPECT_TRUE(result.allFinalized) << app.name;
  if (std::string_view(app.name) == "126.lammps") {
    EXPECT_TRUE(result.deadlockReported);
  } else {
    EXPECT_FALSE(result.deadlockReported) << app.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SpecAppTest,
                         ::testing::Range<std::size_t>(0, 12),
                         [](const auto& info) {
                           std::string name =
                               workloads::specSuite()[info.param].name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(Spec, ReferenceRunsMatchToolRunsInCallCounts) {
  // The tool must be observation-only: identical programs issue identical
  // call counts with and without it.
  for (const char* name : {"121.pop2", "132.zeusmp2", "129.tera_tf"}) {
    const SpecApp* app = findSpecApp(name);
    SpecScale scale;
    scale.iterations = 3;
    scale.computeScale = 0.05;
    const auto ref = must::runReference(8, mpi::RuntimeConfig{},
                                        app->make(scale));
    const auto tooled = must::runWithTool(8, mpi::RuntimeConfig{},
                                          must::ToolConfig{.fanIn = 4},
                                          app->make(scale));
    EXPECT_EQ(ref.appCalls, tooled.appCalls) << name;
  }
}

}  // namespace
}  // namespace wst::workloads

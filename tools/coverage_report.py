#!/usr/bin/env python3
"""Per-subsystem line-coverage report over a WST_COVERAGE build tree.

Walks the .gcno/.gcda files of a build directory, runs gcov in JSON mode,
aggregates executed/executable lines per source file, and prints one row per
subsystem of interest. With --check, exits non-zero when a subsystem falls
below its threshold (the floors are set a few points under the measured
coverage so genuine regressions fail CI without flaking on noise).

Usage:
  python3 tools/coverage_report.py <build-dir> [--check]
"""

import argparse
import collections
import json
import os
import subprocess
import sys

# Subsystem -> minimum line coverage (percent). Enforced with --check.
THRESHOLDS = {
    "src/waitstate": 88.0,
    "src/must": 94.0,
    "src/wfg": 94.0,
    "src/fuzz": 85.0,
}


def gcda_files(build_dir):
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def collect(build_dir, repo_root):
    covered = collections.Counter()
    total = collections.Counter()
    seen = set()
    for gcda in gcda_files(build_dir):
        out = subprocess.run(
            ["gcov", "--stdout", "--json-format", gcda],
            cwd=os.path.dirname(gcda),
            capture_output=True,
            text=True,
            check=False,
        )
        if out.returncode != 0:
            continue
        for line in out.stdout.splitlines():
            if not line.startswith("{"):
                continue
            data = json.loads(line)
            for f in data.get("files", []):
                path = os.path.normpath(
                    os.path.join(data.get("current_working_directory", ""),
                                 f["file"]))
                rel = os.path.relpath(path, repo_root)
                if not rel.startswith("src" + os.sep):
                    continue
                key = (rel, data.get("data_file", ""))
                if key in seen:  # one object file's view per source is enough
                    continue
                seen.add(key)
                for ln in f.get("lines", []):
                    tag = (rel, ln["line_number"])
                    total[tag] = 1
                    if ln["count"] > 0:
                        covered[tag] = 1
    return covered, total


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir")
    parser.add_argument("--check", action="store_true",
                        help="fail when a subsystem is below its threshold")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    covered, total = collect(args.build_dir, repo_root)
    if not total:
        print("no gcov data found — was the build configured with "
              "-DWST_COVERAGE=ON and were the tests run?", file=sys.stderr)
        return 2

    by_subsystem_cov = collections.Counter()
    by_subsystem_tot = collections.Counter()
    for (rel, _line) in total:
        subsystem = os.sep.join(rel.split(os.sep)[:2])
        by_subsystem_tot[subsystem] += 1
    for (rel, _line) in covered:
        subsystem = os.sep.join(rel.split(os.sep)[:2])
        by_subsystem_cov[subsystem] += 1

    failures = []
    for subsystem in sorted(by_subsystem_tot):
        tot = by_subsystem_tot[subsystem]
        cov = by_subsystem_cov[subsystem]
        pct = 100.0 * cov / tot
        floor = THRESHOLDS.get(subsystem)
        marker = ""
        if floor is not None:
            marker = f"  (floor {floor:.0f}%)"
            if args.check and pct < floor:
                failures.append((subsystem, pct, floor))
                marker += "  FAIL"
        print(f"{subsystem:<16} {cov:>6}/{tot:<6} lines  {pct:6.2f}%{marker}")

    if failures:
        for subsystem, pct, floor in failures:
            print(f"coverage regression: {subsystem} at {pct:.2f}% "
                  f"(floor {floor:.0f}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

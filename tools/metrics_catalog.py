#!/usr/bin/env python3
"""Generate docs/METRICS.md from the instrument registration sites.

Scans src/ for MetricsRegistry registrations — `.counter("name")`,
`.gauge("name")`, `.histogram("name")` — and writes a catalog grouped by
name prefix. Names that end in '/' are dynamic families (the suffix is
appended at runtime, e.g. a link class or message kind) and are listed
with a trailing `<suffix>` placeholder.

Usage:
  python3 tools/metrics_catalog.py          # rewrite docs/METRICS.md
  python3 tools/metrics_catalog.py --check  # exit 1 if the file is stale
"""
import collections
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "docs" / "METRICS.md"

# Matches `.counter("name")`, `->gauge("name")` and dynamic-family
# constructions like `counter(std::string("prefix/") + kind)`, across line
# breaks.
REGISTRATION = re.compile(
    r'(?:\.|->)(counter|gauge|histogram)\(\s*(?:std::string\(\s*)?"([^"]+)"')

# One-line summaries per top-level prefix, in catalog order. A metric whose
# prefix is missing here still appears (under "other") — the script never
# silently drops registrations.
PREFIXES = [
    ("overlay", "TBON overlay traffic: logical vs channel messages, bytes,"
                " batching, and queue depths per link class."),
    ("tool", "Detection pipeline: rounds, pings, gather savings, and"
             " verification divergence counts."),
    ("tracker", "Wait-state tracker: transitions, suppression layers"
                " (hybrid / incremental / ping pruning), certified ops."),
    ("overhead", "Virtual-time overhead buckets of the telemetry plane"
                 " (DESIGN.md §16): per-call wrapper and sampled costs,"
                 " credit-gate waits, and per-round sync/gather/resync."),
    ("health", "TBON health beats: rows sent/received, staleness flag"
               " transitions, and the current stale-node count."),
    ("trace", "Flight recorder: dropped events when a ring overflows."),
    ("engine", "Parallel-engine execution stats (published after the run;"
               " per-worker splits are opt-in and nondeterministic)."),
]

# One-line meaning per metric. A registration with no entry here renders
# with an em-dash and `--check` prints a warning naming it, so new
# instruments show up as an explicit gap instead of vanishing.
DESCRIPTIONS = {
    "engine/cross_lp_events": "Events whose sender and receiver LP live on"
        " different shards (crossed an SPSC ring).",
    "engine/events": "Total events executed across all shards.",
    "engine/horizon_stalls": "Per-round LP visits whose next event sat at"
        " or past the conservative horizon and could not run.",
    "engine/lookahead_ns": "Minimum link lookahead the YAWNS horizon is"
        " computed from.",
    "engine/lps": "Logical processes registered with the engine.",
    "engine/mailbox_high_water": "Deepest any cross-shard ring got during"
        " the run.",
    "engine/round_occupancy_p50": "Median events executed per horizon"
        " round.",
    "engine/round_occupancy_p99": "p99 events executed per horizon round.",
    "engine/rounds": "Conservative horizon rounds completed.",
    "engine/shards": "Shards (one per worker thread) the LPs were pinned"
        " to.",
    "engine/threads": "Worker threads the run was configured with.",
    "engine/worker": "Per-worker execution splits (opt-in; varies with"
        " thread count, so excluded from deterministic documents).",
    "health/beats_sent": "HealthBeat messages originated by tool nodes"
        " (one per node per beat interval).",
    "health/flap_suppressed": "Stale flags cleared because the node's"
        " beats resumed before the confirm sweep (no recovery started).",
    "health/reack_waves": "Completed collective waves re-acked downward"
        " after a recovery so moved subtrees drop stale pending state.",
    "health/reparent_runs": "Crash recoveries executed: orphan adoption,"
        " re-registration and wait-state slice re-anchoring (DESIGN.md"
        " §17).",
    "health/rows_received": "Per-node health rows integrated at the root,"
        " including relayed descendants.",
    "health/stale_flags": "Healthy-to-stale transitions observed by the"
        " root's staleness sweep or the crash-plan scan (one per crash;"
        " flaps increment again).",
    "health/stale_nodes": "Tool nodes currently flagged stale at the root"
        " (no beat within healthStaleFactor x interval; crashed nodes stay"
        " flagged after recovery).",
    "overhead/credit_wait_ns": "Virtual time ranks spent blocked on the"
        " batching credit gate.",
    "overhead/gather_ns": "Virtual time from round kickoff until the last"
        " wait-state gather reached the root.",
    "overhead/resync_ns": "Virtual time spent fast-forwarding trackers"
        " after a certified phase cut (hybrid mode).",
    "overhead/sampled_ns": "Virtual time charged to sampled-mode tracking"
        " inside certified regions.",
    "overhead/sync_ns": "Virtual time spent in round-synchronization"
        " (timestamp pings and round barriers).",
    "overhead/wrapper_ns": "Virtual time charged to per-call wrapper"
        " processing on the application ranks.",
    "overlay/batch_occupancy": "Wait-state records per batched channel"
        " message.",
    "overlay/bytes/": "Payload bytes by link class (up / down / intra).",
    "overlay/channel_messages/": "Channel-level messages by link class"
        " after batching.",
    "overlay/max_queue_depth": "Deepest any overlay node's inbound queue"
        " got.",
    "overlay/messages/": "Logical messages by link class before batching.",
    "overlay/queue_depth": "Inbound queue depth sampled at delivery.",
    "overlay/service_time_ns": "Per-message service time at tool nodes.",
    "tool/delivered/": "Tool-layer messages delivered, by message kind.",
    "tool/detections": "Detection rounds that reported a deadlock.",
    "tool/gather_saved_bytes": "Bytes the delta-gather avoided sending"
        " versus full snapshots.",
    "tool/hierarchical_divergences": "Disagreements between the in-tree"
        " check and the root check (must stay 0).",
    "tool/last_round/boundary_arcs": "Boundary arcs the root saw in the"
        " most recent hierarchical round.",
    "tool/last_round/boundary_nodes": "Boundary nodes the root saw in the"
        " most recent hierarchical round.",
    "tool/last_round/changed": "Processes whose conditions changed in the"
        " most recent round.",
    "tool/last_round/full_rebuild": "1 if the most recent round fell back"
        " to a full WFG rebuild.",
    "tool/last_round/repruned": "Arcs re-pruned during the most recent"
        " warm-started round.",
    "tool/last_round/seed_released": "Seed processes released by the most"
        " recent fixpoint.",
    "tool/last_round/unchanged": "Processes whose conditions were"
        " unchanged in the most recent round.",
    "tool/last_round/warm_start": "1 if the most recent round warm-started"
        " from the persistent WFG.",
    "tool/max_window": "High-water tracked-operation window across the"
        " fleet.",
    "tool/ping_skip_hazards": "Pruned links found to have carried"
        " data-plane traffic during the stopped window.",
    "tool/pings_sent": "Timestamp pings sent for round synchronization.",
    "tool/pings_skipped": "Timestamp pings elided by ping pruning.",
    "tool/transitions": "Wait-state transitions applied across all"
        " trackers.",
    "tool/verify_divergences": "Plain-vs-incremental verification"
        " differences (must stay 0).",
    "tool/waitinfo_fanin": "Children merged per wait-state fan-in at a"
        " tool node.",
    "tool/waitinfo_merge_saved_bytes": "Bytes saved by merging wait-state"
        " records on the way up.",
    "trace/dropped_events": "Flight-recorder events overwritten before"
        " export because a per-LP ring overflowed.",
    "tracker/certified_ops": "Operations skipped at full fidelity because"
        " a static certificate covered them.",
    "tracker/consumed_evictions": "Consumed-operation records evicted from"
        " the bounded window.",
    "tracker/consumed_pinned": "Eviction attempts where every history"
        " entry was pinned by an unacked in-flight consumer.",
    "tracker/max_window": "High-water per-rank tracked-operation window.",
    "tracker/phase_marks": "Phase markers observed by trackers.",
    "tracker/suppressed_msgs": "Wait-state messages suppressed by any"
        " layer (sum of the family below).",
    "tracker/suppressed_msgs/hybrid": "Suppressed inside certified regions"
        " (sampling mode).",
    "tracker/suppressed_msgs/incremental": "Suppressed because the delta"
        " gather saw no change.",
    "tracker/suppressed_msgs/ping_prune": "Suppressed by ping pruning.",
}

HEADER = """\
# Metric catalog

Generated by `python3 tools/metrics_catalog.py` — do not edit by hand.

Every instrument registered against the tool's `MetricsRegistry`
(`src/support/metrics.*`), grouped by name prefix. Counters are
monotonic; gauges carry a value and a high-water `#max`; histograms
export `#count`/`#min`/`#max`/`#p50`/`#p99`/`#sum` facets. The same names
appear in the `--metrics` JSON dump, in timeline documents
(`wst-timeline-v1`) as `<kind>/<name>` series keys, and in the
Prometheus exposition mangled to `wst_<name with / as _>`. A trailing
`<suffix>` marks a dynamic family: the suffix is chosen at runtime (a
link class, worker index, or message kind).
"""


def collect():
    rows = []
    for path in sorted((ROOT / "src").rglob("*.[ch]pp")):
        rel = path.relative_to(ROOT)
        text = path.read_text()
        for m in REGISTRATION.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            rows.append((m.group(2), m.group(1), f"{rel}:{lineno}"))
    # The same name may be registered from several sites (registrations are
    # idempotent); keep the first site per (name, kind).
    seen = {}
    for name, kind, site in rows:
        seen.setdefault((name, kind), site)
    return sorted((n, k, s) for (n, k), s in seen.items())


def render(rows):
    groups = collections.defaultdict(list)
    known = [p for p, _ in PREFIXES]
    for name, kind, site in rows:
        prefix = name.split("/", 1)[0]
        groups[prefix if prefix in known else "other"].append(
            (name, kind, site))
    out = [HEADER]
    order = PREFIXES + ([("other", "Everything else.")]
                        if "other" in groups else [])
    for prefix, blurb in order:
        if prefix not in groups:
            continue
        out.append(f"\n## {prefix}/\n\n{blurb}\n\n")
        out.append("| Metric | Kind | Meaning | Registered at |\n"
                   "|---|---|---|---|\n")
        for name, kind, site in groups[prefix]:
            shown = f"`{name}<suffix>`" if name.endswith("/") else f"`{name}`"
            desc = DESCRIPTIONS.get(name, "—")
            out.append(f"| {shown} | {kind} | {desc} | `{site}` |\n")
    return "".join(out)


def main():
    rows = collect()
    if not rows:
        sys.exit("no metric registrations found under src/")
    text = render(rows)
    for name, _, site in rows:
        if name not in DESCRIPTIONS:
            print(f"warning: no description for {name} ({site})",
                  file=sys.stderr)
    if "--check" in sys.argv[1:]:
        current = OUT.read_text() if OUT.exists() else ""
        if current != text:
            sys.exit(f"{OUT.relative_to(ROOT)} is stale; rerun "
                     "tools/metrics_catalog.py")
        print(f"{OUT.relative_to(ROOT)} is current ({len(rows)} metrics)")
        return
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(text)
    print(f"wrote {OUT.relative_to(ROOT)} ({len(rows)} metrics)")


if __name__ == "__main__":
    main()

// wst — command-line driver for the reproduction.
//
// Runs a named workload on the simulated MPI runtime with the deadlock
// detection tool attached and reports the verdict, overheads, and (on
// request) the DOT/HTML artifacts.
//
//   wst list
//   wst run --workload wildcard --procs 64 --fanin 4 --dot /tmp/wfg.dot
//   wst run --workload 126.lammps --procs 256 --centralized
//   wst run --workload figure2b --no-buffer
//   wst run --workload figure4 --rooted-collectives
//   wst fuzz --runs 500 --seed 7 --out-dir /tmp/fuzz
//   wst fuzz --replay /tmp/fuzz/fuzz-0000000000000007-12.wst
//   wst serve --sessions 16 --threads 4 --status-out /tmp/serve.json
//
// Exit code: 0 = clean run, 2 = deadlock reported, 1 = usage error,
// 3 = --verify-incremental or fuzz oracle divergence.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certificate.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/interpreter.hpp"

#include "must/harness.hpp"
#include "must/serve.hpp"
#include "must/hybrid.hpp"
#include "must/telemetry.hpp"
#include "support/strings.hpp"
#include "support/trace_export.hpp"
#include "support/tracing.hpp"
#include "wfg/compress.hpp"
#include "workloads/spec.hpp"
#include "workloads/stress.hpp"

using namespace wst;

namespace {

struct Options {
  std::string workload = "stress";
  std::int32_t procs = 16;
  std::int32_t fanIn = 4;
  bool centralized = false;
  bool faithful = false;
  bool noBuffer = false;
  bool rootedCollectives = false;
  bool prioritize = false;
  bool batch = false;  // coalesce wait-state messages on intralayer/up links
  bool compare = false;  // also run an untooled reference and print slowdown
  std::int32_t iterations = 50;
  std::int32_t distance = 1;  // stress neighbour distance (ring stride)
  std::int32_t active = 0;    // stress active ranks (0 = all)
  std::int32_t threads = 1;   // parallel engine workers; 0 = classic serial
  bool engineStats = false;   // print parallel-engine round statistics
  sim::Duration periodic = 0;
  bool noIncremental = false;  // full gather + cold check every round
  bool verifyIncremental = false;  // side-by-side full check each round
  bool hierarchicalCheck = false;  // in-tree condensed check replaces gather
  bool verifyHierarchical = false;  // condensed check next to the raw check
  bool hybrid = false;         // static certificate + sampled tracking
  bool verifyHybrid = false;   // dual run, plain vs hybrid; exit 3 on any
                               // divergence in verdict/deadlocked/state
  bool prunePings = false;     // skip ping-pong toward quiet peer links
  double warmThreshold = 0.5;  // changed fraction above which a round
                               // falls back to full rebuild + cold check
  std::string dotPath;
  std::string compressedDotPath;
  std::string htmlPath;
  std::string metricsPath;  // dump the tool metrics registry as JSON
  std::string traceOut;     // Chrome trace-event JSON of the flight recorder
  std::int32_t traceDepth = 4096;  // ring capacity per trace track

  // Live telemetry plane (DESIGN.md §16).
  bool telemetry = false;      // per-round timeline + overhead accounting
  bool top = false;            // `wst top`: render the timeline post-run
  std::string statusOut;       // status JSON path (+ .prom sibling)
  sim::Duration statusInterval = 5'000'000;  // virtual ns between rewrites
  sim::Duration beatInterval = 0;            // TBON health beats (0 = off)
  std::string timelineOut;     // timeline JSON (wst-timeline-v1) path
  std::int32_t muteNode = -1;  // test hook: node that never sends beats
};

void printUsage() {
  std::puts(
      "usage: wst <command> [options]\n"
      "\n"
      "commands:\n"
      "  list                     list available workloads\n"
      "  run                      run a workload under the tool\n"
      "  top                      run with telemetry and render the\n"
      "                           per-round metric timeline (accepts all\n"
      "                           run options)\n"
      "  fuzz                     differential protocol fuzzing (see below)\n"
      "  serve                    multiplex N independent scenarios as\n"
      "                           co-scheduled sessions over a shared\n"
      "                           thread pool (see below)\n"
      "\n"
      "run options:\n"
      "  --workload NAME          workload or SPEC proxy name (default: stress)\n"
      "  --procs N                number of simulated ranks (default: 16)\n"
      "  --fanin F                TBON fan-in (default: 4)\n"
      "  --centralized            use the centralized baseline architecture\n"
      "  --iterations N           workload iterations (default: 50)\n"
      "  --distance D             stress exchange ring distance (default: 1;\n"
      "                           set to the fan-in to cross node boundaries)\n"
      "  --active N               stress: only the first N ranks exchange;\n"
      "                           the rest block on a completion token\n"
      "                           (stable wait states for delta gathers)\n"
      "  --faithful               implementation-faithful blocking model\n"
      "  --no-buffer              MPI does not buffer standard sends\n"
      "  --rooted-collectives     rooted collectives do not synchronize\n"
      "  --prioritize             prefer wait-state messages (smaller windows)\n"
      "  --batch                  coalesce wait-state messages per link\n"
      "  --threads N              parallel engine worker threads (default: 1;\n"
      "                           0 = classic single-queue serial engine).\n"
      "                           Results are identical for any N\n"
      "  --engine-stats           print parallel engine round statistics\n"
      "  --periodic-ms X          periodic detection every X virtual ms\n"
      "  --no-incremental         full wait-info gather + cold deadlock check\n"
      "                           every round (incremental is the default)\n"
      "  --verify-incremental     run the full rebuild + cold check next to\n"
      "                           every incremental round; exit 3 on any\n"
      "                           divergence in verdict/deadlock set/DOT\n"
      "  --hierarchical-check     run the deadlock check inside the tree:\n"
      "                           subtrees resolve local fates and forward\n"
      "                           boundary condensations; the root checks\n"
      "                           boundary nodes only (replaces the raw\n"
      "                           wait-info gather)\n"
      "  --verify-hierarchical    run the condensed in-tree check next to\n"
      "                           the raw root check; exit 3 on any\n"
      "                           divergence in verdict/deadlocked/released\n"
      "  --hybrid                 certify the workload's deterministic phases\n"
      "                           with the static classifier (one tool-free\n"
      "                           profiling run) and sample instead of track\n"
      "                           inside the certified prefix\n"
      "  --verify-hybrid          run the tool twice, plain and hybrid, and\n"
      "                           compare verdict, deadlocked set, and the\n"
      "                           terminal per-rank state; exit 3 on any\n"
      "                           divergence\n"
      "  --prune-pings            skip the consistent-state ping-pong toward\n"
      "                           peers whose links carried no wait-state\n"
      "                           traffic since the last round\n"
      "  --warm-threshold X       changed-node fraction above which a\n"
      "                           round runs a full rebuild + cold check\n"
      "                           instead of a warm start (default 0.5)\n"
      "  --compare                also run an untooled reference (slowdown)\n"
      "  --dot PATH               write the deadlock wait-for graph as DOT\n"
      "  --compressed-dot PATH    write the class-compressed DOT\n"
      "  --html PATH              write the HTML report\n"
      "  --metrics PATH           write the tool metrics registry as JSON\n"
      "  --trace-out PATH         record a protocol trace and write it as\n"
      "                           Chrome trace-event JSON (load in Perfetto\n"
      "                           or chrome://tracing)\n"
      "  --trace-depth N          flight-recorder ring capacity per track\n"
      "                           (default: 4096 events; oldest drop first)\n"
      "  --telemetry              per-round metric timeline + overhead\n"
      "                           self-accounting (implied by the flags\n"
      "                           below and by `wst top`)\n"
      "  --status-out PATH        rewrite a live status JSON document at\n"
      "                           PATH (and Prometheus text at PATH.prom)\n"
      "                           on a virtual-time cadence; byte-identical\n"
      "                           for any --threads N\n"
      "  --status-interval-ms X   status rewrite cadence in virtual ms\n"
      "                           (default: 5)\n"
      "  --beat-interval-ms X     TBON health beats every X virtual ms:\n"
      "                           nodes report queue/retransmit/epoch state\n"
      "                           up the tree; the root flags stale nodes\n"
      "                           (default: off)\n"
      "  --timeline-out PATH      write the per-round metric timeline as\n"
      "                           JSON (schema wst-timeline-v1) after the\n"
      "                           run\n"
      "  --mute-node N            test hook: tool node N never sends health\n"
      "                           beats (exercises staleness detection)\n"
      "\n"
      "fuzz options:\n"
      "  --runs N                 scenarios to generate and check (default 100)\n"
      "  --seed S                 campaign seed; same seed + options =>\n"
      "                           byte-identical scenarios and verdicts\n"
      "  --threads N              distributed runs on the parallel engine\n"
      "                           (default 0 = serial)\n"
      "  --batch                  enable wait-state batching in the tool\n"
      "  --hierarchical           run every distributed check with the\n"
      "                           hierarchical in-tree path and its in-tool\n"
      "                           differential guard\n"
      "  --hybrid                 certify each scenario statically and run\n"
      "                           the distributed side in hybrid sampling\n"
      "                           mode (verdicts must not change)\n"
      "  --no-faults              skip the fault-injected variant of each run\n"
      "  --fault-kinds KINDS      extra fault kinds; 'crash' generates\n"
      "                           scenarios that crash-stop a random inner\n"
      "                           tool node at a random virtual time (the\n"
      "                           recovery protocol must keep verdicts\n"
      "                           identical to the formal oracle)\n"
      "  --inject-bug K           plant tool bug K (test hook; 1 = drop probe\n"
      "                           acks) so the oracle must catch it\n"
      "  --out-dir DIR            where divergence artifacts go (default .)\n"
      "  --budget-sec X           stop starting new runs after X wall seconds\n"
      "  --no-shrink              keep divergent scenarios unminimized\n"
      "  --shrink-budget N        max oracle evaluations per shrink (default\n"
      "                           400)\n"
      "  --emit-corpus DIR        save structurally diverse scenarios to DIR\n"
      "  --replay FILE            differential-check one .wst scenario file\n"
      "  --print-scenario S       print the generated scenario for seed S\n"
      "\n"
      "  fuzz exit code: 0 = all oracles agree, 3 = divergence found\n"
      "\n"
      "serve options:\n"
      "  --sessions N             sessions to build and serve (default 8);\n"
      "                           session i runs the fuzz scenario for seed\n"
      "                           BASE+i with its own virtual clock and\n"
      "                           isolated metrics/trace namespaces\n"
      "  --seed S                 base scenario seed (default 1)\n"
      "  --threads N              scheduler worker threads (default 1);\n"
      "                           results are byte-identical for any N\n"
      "  --session-cap N          max concurrently admitted sessions\n"
      "                           (default 8; the rest queue FIFO)\n"
      "  --slice-events N         events per session per scheduling round\n"
      "                           (default 4096)\n"
      "  --status-out PATH        write the final status JSON document\n"
      "                           (schema wst-serve-v1, sessions table +\n"
      "                           serve counters)\n"
      "  --verify-solo            also run every session alone and require\n"
      "                           byte-identical verdict/metrics/DOT/trace\n"
      "\n"
      "  serve exit code: 0 = all sessions clean, 2 = deadlock verdict(s),\n"
      "  3 = --verify-solo parity mismatch\n");
}

int runFuzz(int argc, char** argv) {
  fuzz::FuzzConfig cfg;
  cfg.runs = 100;
  std::string replayPath;
  std::optional<std::uint64_t> printSeed;
  bool noFaults = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--runs") {
      cfg.runs = std::atoi(value());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(value());
    } else if (arg == "--batch") {
      cfg.batch = true;
    } else if (arg == "--hierarchical") {
      cfg.hierarchical = true;
    } else if (arg == "--hybrid") {
      cfg.hybrid = true;
    } else if (arg == "--no-faults") {
      noFaults = true;
    } else if (arg == "--fault-kinds") {
      const std::string kinds = value();
      if (kinds.find("crash") != std::string::npos) cfg.crashFaults = true;
      if (kinds.find("crash") == std::string::npos && kinds != "default") {
        std::fprintf(stderr, "unknown fault kind '%s'\n", kinds.c_str());
        return 1;
      }
    } else if (arg == "--inject-bug") {
      cfg.injectBug = std::atoi(value());
    } else if (arg == "--out-dir") {
      cfg.outDir = value();
    } else if (arg == "--budget-sec") {
      cfg.budgetSec = std::atof(value());
    } else if (arg == "--no-shrink") {
      cfg.shrinkOnDivergence = false;
    } else if (arg == "--shrink-budget") {
      cfg.shrinkBudget = static_cast<std::size_t>(std::atoi(value()));
    } else if (arg == "--emit-corpus") {
      cfg.emitCorpusDir = value();
    } else if (arg == "--replay") {
      replayPath = value();
    } else if (arg == "--print-scenario") {
      printSeed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown fuzz option '%s'\n", arg.c_str());
      return 1;
    }
  }
  cfg.faults = !noFaults;

  if (printSeed) {
    fuzz::GenOptions gen;
    gen.allowCrash = cfg.crashFaults;
    std::fputs(fuzz::makeScenario(*printSeed, gen).serialize().c_str(),
               stdout);
    return 0;
  }

  if (!replayPath.empty()) {
    std::ifstream in(replayPath, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replayPath.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const auto scenario = fuzz::Scenario::parse(text.str(), &error);
    if (!scenario) {
      std::fprintf(stderr, "cannot parse %s: %s\n", replayPath.c_str(),
                   error.c_str());
      return 1;
    }
    fuzz::RunOptions options;
    options.faults = cfg.faults && scenario->faults.any();
    options.threads = cfg.threads;
    options.batch = cfg.batch;
    options.hierarchical = cfg.hierarchical;
    options.hybrid = cfg.hybrid;
    options.injectBug = cfg.injectBug;
    const std::string reason =
        fuzz::replayScenario(*scenario, options, std::cout);
    return reason.empty() ? 0 : 3;
  }

  if (cfg.runs < 1) {
    std::fprintf(stderr, "--runs must be at least 1\n");
    return 1;
  }
  const fuzz::FuzzReport report = fuzz::runFuzzCampaign(cfg, std::cout);
  return report.divergences > 0 ? 3 : 0;
}

/// Build the serve session for scenario seed `seed`: the same zero-overhead
/// tool configuration the fuzz oracle uses, so a served session's verdict is
/// comparable with `wst fuzz --print-scenario seed` + replay.
must::SessionSpec makeServeSession(std::int32_t index, std::uint64_t seed) {
  const auto scenario =
      std::make_shared<const fuzz::Scenario>(fuzz::makeScenario(seed));
  must::SessionSpec spec;
  spec.name = support::format("s%03d-%016llx", index,
                              static_cast<unsigned long long>(seed));
  spec.procs = scenario->procs;
  spec.mpiConfig.ranksPerNode = 2;
  spec.tool.fanIn = scenario->fanIn;
  spec.tool.appEventCost = 0;
  spec.tool.overlay.appToLeaf.credits = 0;
  spec.tool.detectOnQuiescence = true;
  spec.tool.periodicDetection = scenario->periodic;
  spec.tool.detectionJitter = scenario->detectionJitter;
  spec.tool.detectionJitterSeed = scenario->seed + 1;
  spec.tool.maxPeriodicRounds = 64;
  spec.tool.consumedHistory = scenario->consumedHistory;
  spec.tool.overlay.intralayer.latency = scenario->latIntra;
  spec.tool.overlay.treeUp.latency = scenario->latUp;
  spec.tool.overlay.treeDown.latency = scenario->latDown;
  spec.program = fuzz::scenarioProgram(scenario);
  return spec;
}

int runServe(int argc, char** argv) {
  must::ServeServer::Config cfg;
  std::int32_t sessions = 8;
  std::uint64_t seed = 1;
  std::string statusOut;
  bool verifySolo = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      sessions = std::atoi(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(value());
    } else if (arg == "--session-cap") {
      cfg.sessionCap = std::atoi(value());
    } else if (arg == "--slice-events") {
      cfg.sliceEvents = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--status-out") {
      statusOut = value();
    } else if (arg == "--verify-solo") {
      verifySolo = true;
    } else if (arg == "--help" || arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown serve option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (sessions < 1) {
    std::fprintf(stderr, "--sessions must be at least 1\n");
    return 1;
  }
  if (cfg.threads < 1 || cfg.sessionCap < 1 || cfg.sliceEvents < 1) {
    std::fprintf(stderr,
                 "--threads, --session-cap and --slice-events must be >= 1\n");
    return 1;
  }

  std::vector<must::SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(sessions));
  for (std::int32_t i = 0; i < sessions; ++i) {
    specs.push_back(makeServeSession(i, seed + static_cast<std::uint64_t>(i)));
  }

  must::ServeServer server(cfg);
  for (const must::SessionSpec& spec : specs) server.submit(spec);
  server.run();

  for (const must::SessionResult& r : server.results()) {
    std::printf("%-24s %s rounds=%llu events=%llu\n", r.name.c_str(),
                r.summary.c_str(), static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.eventsExecuted));
  }
  std::printf(
      "serve: %llu admitted, %llu completed, %llu evicted, %llu deadlocks, "
      "%llu rounds\n",
      static_cast<unsigned long long>(server.admitted()),
      static_cast<unsigned long long>(server.completed()),
      static_cast<unsigned long long>(server.evicted()),
      static_cast<unsigned long long>(server.deadlocks()),
      static_cast<unsigned long long>(server.roundsRun()));

  if (!statusOut.empty()) {
    std::ofstream out(statusOut, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", statusOut.c_str());
      return 1;
    }
    out << server.statusJson();
  }

  if (verifySolo) {
    std::int32_t mismatches = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const must::SessionResult solo = must::runSessionSolo(specs[i]);
      const must::SessionResult& served = server.results()[i];
      const auto differs = [&](const char* what) {
        std::fprintf(stderr, "serve: PARITY MISMATCH %s: %s\n",
                     served.name.c_str(), what);
        ++mismatches;
      };
      if (solo.deadlock != served.deadlock) differs("verdict");
      else if (solo.detections != served.detections) differs("detections");
      else if (solo.completionTime != served.completionTime) {
        differs("completion time");
      } else if (solo.traceHash != served.traceHash) differs("trace hash");
      else if (solo.metricsJson != served.metricsJson) differs("metrics JSON");
      else if (solo.dot != served.dot) differs("DOT");
      else if (solo.summary != served.summary) differs("summary");
    }
    if (mismatches > 0) return 3;
    std::printf("serve: all %zu sessions byte-identical to solo runs\n",
                specs.size());
  }
  return server.deadlocks() > 0 ? 2 : 0;
}

std::optional<mpi::Runtime::Program> makeWorkload(const Options& opt) {
  workloads::StressParams stress;
  stress.iterations = opt.iterations;
  stress.neighborDistance = opt.distance;
  stress.activeRanks = opt.active;
  if (opt.workload == "stress") return workloads::cyclicExchange(stress);
  if (opt.workload == "unsafe-stress") {
    return workloads::unsafeCyclicExchange(stress);
  }
  if (opt.workload == "wildcard") return workloads::wildcardDeadlock();
  if (opt.workload == "recv-recv") return workloads::recvRecvDeadlock();
  if (opt.workload == "figure2b") return workloads::figure2b();
  if (opt.workload == "figure4") return workloads::figure4();
  if (const workloads::SpecApp* app = workloads::findSpecApp(opt.workload)) {
    workloads::SpecScale scale;
    scale.iterations = std::max(opt.iterations / 5, 2);
    scale.computeScale = 256.0 / opt.procs;
    return app->make(scale);
  }
  return std::nullopt;
}

int listWorkloads() {
  std::puts("built-in workloads:");
  std::puts("  stress          paper §6 cyclic-exchange stress test (safe)");
  std::puts("  unsafe-stress   send-before-recv variant (flagged as unsafe)");
  std::puts("  wildcard        paper Fig. 10: p^2-arc wildcard deadlock");
  std::puts("  recv-recv       paper Fig. 2(a): head-to-head receives");
  std::puts("  figure2b        paper Fig. 2(b): wildcards + send-send");
  std::puts("  figure4         paper Fig. 4: unexpected match scenario");
  std::puts("\nSPEC MPI2007 proxies:");
  for (const workloads::SpecApp& app : workloads::specSuite()) {
    std::printf("  %-15s %s%s\n", app.name, app.notes,
                app.excludedFromAverage ? " [excluded from averages]" : "");
  }
  return 0;
}

int runWorkload(const Options& opt) {
  const auto program = makeWorkload(opt);
  if (!program) {
    std::fprintf(stderr, "unknown workload '%s' (try: wst list)\n",
                 opt.workload.c_str());
    return 1;
  }

  mpi::RuntimeConfig mpiCfg;
  mpiCfg.bufferStandardSends = !opt.noBuffer;
  if (opt.rootedCollectives) {
    mpiCfg.collectiveSync = mpi::CollectiveSync::kRooted;
  }

  must::ToolConfig toolCfg;
  toolCfg.fanIn = opt.centralized ? std::max(opt.procs, 2) : opt.fanIn;
  toolCfg.blockingModel = opt.faithful
                              ? trace::BlockingModel::kImplementationFaithful
                              : trace::BlockingModel::kConservative;
  toolCfg.prioritizeWaitState = opt.prioritize;
  toolCfg.batchWaitState = opt.batch;
  toolCfg.periodicDetection = opt.periodic;
  toolCfg.incrementalGather = !opt.noIncremental;
  toolCfg.verifyIncremental = opt.verifyIncremental;
  toolCfg.hierarchicalCheck = opt.hierarchicalCheck;
  toolCfg.verifyHierarchical = opt.verifyHierarchical;
  toolCfg.pruneConsistentPings = opt.prunePings;
  toolCfg.warmStartThreshold = opt.warmThreshold;

  // Any telemetry output implies the timeline + overhead accounting; health
  // beats stay a separate opt-in because they add protocol traffic.
  const bool telemetry = opt.telemetry || opt.top || !opt.statusOut.empty() ||
                         !opt.timelineOut.empty() || opt.beatInterval > 0;
  toolCfg.telemetry = telemetry;
  toolCfg.healthBeatInterval = opt.beatInterval;
  toolCfg.muteHealthBeatNode = opt.muteNode;

  // Divergence guard for the hybrid mode, styled after --verify-incremental:
  // run the tool twice — pure dynamic tracking vs certificate-driven
  // sampling — and require identical verdicts, deadlocked sets, and terminal
  // per-rank operation counts. Exit 3 on any difference.
  if (opt.verifyHybrid) {
    const analysis::Certificate cert =
        must::certifyWorkload(opt.procs, mpiCfg, *program);
    std::printf("verify-hybrid: %s\n", cert.summary().c_str());

    struct SideResult {
      bool deadlock = false;
      std::vector<trace::ProcId> deadlocked;
      bool allFinalized = false;
      std::vector<trace::LocalTs> state;
    };
    const auto runSide = [&](const analysis::Certificate* certificate) {
      sim::Engine engine;
      mpi::Runtime runtime(engine, mpiCfg, opt.procs);
      must::ToolConfig cfg = toolCfg;
      cfg.certificate = certificate;
      must::DistributedTool tool(engine, runtime, cfg);
      runtime.runToCompletion(*program);
      SideResult side;
      side.deadlock = tool.deadlockFound();
      if (tool.report()) side.deadlocked = tool.report()->check.deadlocked;
      std::sort(side.deadlocked.begin(), side.deadlocked.end());
      side.allFinalized = runtime.allFinalized();
      for (trace::ProcId p = 0; p < opt.procs; ++p) {
        side.state.push_back(
            tool.tracker(tool.topology().nodeOfProc(p)).current(p));
      }
      return side;
    };
    const SideResult plain = runSide(nullptr);
    const SideResult hybrid = runSide(&cert);
    std::string divergence;
    if (plain.deadlock != hybrid.deadlock) {
      divergence = "verdict differs";
    } else if (plain.deadlocked != hybrid.deadlocked) {
      divergence = "deadlocked sets differ";
    } else if (plain.allFinalized != hybrid.allFinalized) {
      divergence = "completion differs";
    } else if (plain.state != hybrid.state) {
      divergence = "terminal state vectors differ";
    }
    if (!divergence.empty()) {
      std::printf("verify-hybrid: DIVERGENCE: %s\n", divergence.c_str());
      return 3;
    }
    std::printf("verify-hybrid: verdict '%s', zero divergences\n",
                plain.deadlock ? "deadlock" : "clean");
    return plain.deadlock ? 2 : 0;
  }

  // Certificate must outlive the tool: the wrapper consults it on every
  // sampled event.
  std::optional<analysis::Certificate> certificate;
  if (opt.hybrid) {
    certificate = must::certifyWorkload(opt.procs, mpiCfg, *program);
    std::printf("hybrid: %s\n", certificate->summary().c_str());
    toolCfg.certificate = &*certificate;
  }

  std::printf("running '%s' on %d simulated ranks (%s, fan-in %d, %s b)...\n",
              opt.workload.c_str(), opt.procs,
              opt.centralized ? "centralized" : "distributed", toolCfg.fanIn,
              opt.faithful ? "implementation-faithful" : "conservative");

  // --threads 0 selects the classic single-queue serial engine; N >= 1 runs
  // the conservative parallel engine with N workers (N == 1 executes inline,
  // no threads spawned). Periodic detection runs on the root node's LP and
  // composes with any engine.
  std::unique_ptr<sim::Scheduler> engineHolder;
  sim::ParallelEngine* parEngine = nullptr;
  if (opt.threads == 0) {
    engineHolder = std::make_unique<sim::Engine>();
  } else {
    auto par = std::make_unique<sim::ParallelEngine>(opt.threads);
    parEngine = par.get();
    engineHolder = std::move(par);
  }
  sim::Scheduler& engine = *engineHolder;

  // The flight recorder is only constructed when asked for; everywhere else
  // a null tracer/track pointer short-circuits before any argument work.
  std::optional<support::Tracer> tracer;
  if (!opt.traceOut.empty()) {
    support::Tracer::Config traceCfg;
    traceCfg.capacityPerTrack = static_cast<std::size_t>(
        std::max<std::int32_t>(opt.traceDepth, 16));
    traceCfg.clock = [&engine] {
      return static_cast<std::uint64_t>(engine.now());
    };
    tracer.emplace(traceCfg);
    engine.setTraceTrack(
        tracer->track(support::TrackKind::kEngine, 0, "engine"));
    toolCfg.tracer = &*tracer;
  }

  mpi::Runtime runtime(engine, mpiCfg, opt.procs);
  if (tracer) runtime.setTracer(&*tracer);
  must::DistributedTool tool(engine, runtime, toolCfg);

  std::optional<must::StatusWriter> statusWriter;
  if (!opt.statusOut.empty()) {
    must::StatusWriter::Config swCfg;
    swCfg.path = opt.statusOut;
    swCfg.interval = opt.statusInterval;
    statusWriter.emplace(engine, tool, swCfg);
    statusWriter->start();
  }

  runtime.runToCompletion(*program);

  // Telemetry finalization runs before publishMetrics: the engine's own
  // stats legitimately vary with the worker count, so folding them into the
  // registry first would break the byte-stability of the status/timeline
  // documents across --threads 1..N.
  // Attached regardless of the telemetry flag: the section self-guards and
  // also surfaces dropped trace events and overlay fault totals from plain
  // traced/fault-injected runs.
  tool.attachTelemetryToReport();
  if (telemetry) {
    tool.finalizeTelemetry();
    if (statusWriter) {
      statusWriter->writeFinal();
      std::printf("status written to %s (%s rewrites)\n",
                  opt.statusOut.c_str(),
                  support::withCommas(statusWriter->rewrites()).c_str());
    }
    if (!opt.timelineOut.empty() && tool.timeline() != nullptr) {
      std::ofstream out(opt.timelineOut);
      if (out) {
        out << tool.timeline()->toJson() << "\n";
        std::printf("timeline JSON written to %s\n", opt.timelineOut.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write timeline to %s\n",
                     opt.timelineOut.c_str());
      }
    }
  }

  if (parEngine != nullptr) {
    parEngine->publishMetrics(tool.metrics(),
                              /*includePerWorker=*/opt.engineStats);
  }
  if (tracer) {
    tool.metrics().gauge("trace/dropped_events")
        .set(static_cast<std::int64_t>(tracer->totalDropped()));
    tool.attachTraceToReport();
    std::ofstream out(opt.traceOut);
    if (out) {
      out << support::toChromeTraceJson(*tracer);
      std::printf("trace written to %s (%s events dropped)\n",
                  opt.traceOut.c_str(),
                  support::withCommas(tracer->totalDropped()).c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   opt.traceOut.c_str());
    }
  }

  std::printf("\napplication: %s (virtual runtime %s, %s MPI calls)\n",
              runtime.allFinalized() ? "completed" : "DID NOT COMPLETE",
              support::formatDurationNs(engine.now()).c_str(),
              support::withCommas(runtime.totalCalls()).c_str());
  std::printf("tool: %s transitions analyzed, %s messages, max trace window "
              "%zu\n",
              support::withCommas(tool.totalTransitions()).c_str(),
              support::withCommas(tool.overlay().totalMessages()).c_str(),
              tool.maxWindowSize());
  if (opt.hybrid) {
    std::printf("hybrid: %s certified ops sampled, %s tracker messages "
                "suppressed\n",
                support::withCommas(
                    tool.metrics().counter("tracker/certified_ops").value())
                    .c_str(),
                support::withCommas(tool.metrics()
                                        .counter("tracker/suppressed_msgs/"
                                                 "hybrid")
                                        .value())
                    .c_str());
  }
  if (opt.batch) {
    std::printf("batching: %s intralayer messages in %s channel messages\n",
                support::withCommas(
                    tool.overlay().messages(tbon::LinkClass::kIntralayer))
                    .c_str(),
                support::withCommas(tool.overlay().channelMessages(
                                        tbon::LinkClass::kIntralayer))
                    .c_str());
  }
  if (opt.engineStats && parEngine != nullptr) {
    const sim::ParallelEngine::Stats& st = parEngine->stats();
    std::printf("engine: %d thread(s), %d LPs, lookahead %s, %s rounds, "
                "%s horizon stalls, %s cross-LP events "
                "(mailbox high water %zu), trace hash %016llx\n",
                parEngine->threads(), parEngine->lpCount(),
                support::formatDurationNs(parEngine->lookahead()).c_str(),
                support::withCommas(st.rounds).c_str(),
                support::withCommas(st.horizonStalls).c_str(),
                support::withCommas(st.crossLpEvents).c_str(),
                st.mailboxHighWater,
                static_cast<unsigned long long>(engine.traceHash()));
    const support::Histogram& occ = parEngine->roundOccupancy();
    std::printf("engine: runnable LPs per round p50 %.1f, p99 %.1f, max %s\n",
                occ.quantile(0.5), occ.quantile(0.99),
                support::withCommas(occ.max()).c_str());
    for (std::size_t w = 0; w < st.workerEvents.size(); ++w) {
      std::printf("engine: worker %zu executed %s events\n", w,
                  support::withCommas(st.workerEvents[w]).c_str());
    }
  }
  if (opt.beatInterval > 0) {
    std::uint64_t beatsSeen = 0;
    std::uint32_t reporting = 0;
    for (const must::DistributedTool::NodeHealth& h : tool.healthTable()) {
      beatsSeen += h.beatsSeen;
      reporting += h.everSeen ? 1 : 0;
    }
    std::printf("health: %u/%zu node(s) reporting, %s beat row(s) at root, "
                "%u stale\n",
                reporting, tool.healthTable().size(),
                support::withCommas(beatsSeen).c_str(), tool.staleNodeCount());
    for (std::size_t n = 0; n < tool.healthTable().size(); ++n) {
      if (tool.healthTable()[n].stale) {
        std::printf("health: node %zu STALE (last beat at %s ns)\n", n,
                    support::withCommas(tool.healthTable()[n].arrivedAtNs)
                        .c_str());
      }
    }
  }
  if (opt.top && tool.timeline() != nullptr) {
    const support::MetricsTimeline& tl = *tool.timeline();
    std::printf("\ntimeline: %s capture(s), %s evicted, %zu retained\n",
                support::withCommas(tl.captured()).c_str(),
                support::withCommas(tl.evicted()).c_str(), tl.size());
    for (const support::MetricsTimeline::Point& point : tl.points()) {
      // Show the largest movers per point; ties break on the series key so
      // the rendering is deterministic.
      auto deltas = point.deltas;
      std::sort(deltas.begin(), deltas.end(),
                [](const auto& a, const auto& b) {
                  const std::int64_t ma = a.second < 0 ? -a.second : a.second;
                  const std::int64_t mb = b.second < 0 ? -b.second : b.second;
                  if (ma != mb) return ma > mb;
                  return a.first < b.first;
                });
      constexpr std::size_t kTopMovers = 4;
      const std::size_t shown = std::min(deltas.size(), kTopMovers);
      std::string movers;
      for (std::size_t i = 0; i < shown; ++i) {
        movers += support::format("%s%s %+lld", i == 0 ? "" : "; ",
                                  deltas[i].first.c_str(),
                                  static_cast<long long>(deltas[i].second));
      }
      if (deltas.size() > shown) {
        movers += support::format(" (+%zu more)", deltas.size() - shown);
      }
      std::printf("  %14s  %-9s %s\n",
                  support::withCommas(
                      static_cast<std::uint64_t>(point.timeNs)).c_str(),
                  point.label.c_str(), movers.c_str());
    }
  }
  if (!opt.metricsPath.empty()) {
    std::ofstream out(opt.metricsPath);
    if (out) {
      out << tool.metricsJson() << "\n";
      std::printf("metrics JSON written to %s\n", opt.metricsPath.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                   opt.metricsPath.c_str());
    }
  }

  if (opt.compare) {
    sim::Engine refEngine;
    mpi::Runtime refRuntime(refEngine, mpiCfg, opt.procs);
    refRuntime.runToCompletion(*program);
    if (refEngine.now() > 0) {
      std::printf("slowdown vs untooled reference: %.2fx\n",
                  static_cast<double>(engine.now()) /
                      static_cast<double>(refEngine.now()));
    }
  }

  for (const std::string& err : tool.usageErrors()) {
    std::printf("MPI usage error: %s\n", err.c_str());
  }
  for (const auto& um : tool.unexpectedMatches()) {
    std::printf(
        "UNEXPECTED MATCH: wildcard (%d,%u) could take active send (%d,%u) "
        "but matching chose (%d,%u)\n",
        um.wildcardRecv.proc, um.wildcardRecv.ts, um.activeSend.proc,
        um.activeSend.ts, um.matchedSend.proc, um.matchedSend.ts);
  }

  // Per-round delta statistics of the incremental detection pipeline.
  for (const auto& rs : tool.roundHistory()) {
    if (rs.hierarchical && opt.hierarchicalCheck && !opt.verifyHierarchical) {
      std::printf(
          "round %u: hierarchical check, root saw %llu boundary node(s), "
          "%llu arc run(s)%s\n",
          rs.epoch, static_cast<unsigned long long>(rs.boundaryNodes),
          static_cast<unsigned long long>(rs.boundaryArcs),
          rs.deadlock ? " [deadlock]" : "");
      continue;
    }
    std::printf(
        "round %u: %u changed + %u unchanged conditions, %s (%u repruned, "
        "%u seeded)%s%s%s\n",
        rs.epoch, rs.changed, rs.unchanged,
        rs.fullRebuild ? "full rebuild" : "warm start", rs.repruned,
        rs.seedReleased,
        rs.pingsSkipped > 0
            ? support::format(", %llu/%llu pings skipped",
                              static_cast<unsigned long long>(rs.pingsSkipped),
                              static_cast<unsigned long long>(
                                  rs.pingsSkipped + rs.pingsSent))
                  .c_str()
            : "",
        rs.hierarchical
            ? support::format(", %llu boundary node(s)",
                              static_cast<unsigned long long>(
                                  rs.boundaryNodes))
                  .c_str()
            : "",
        rs.deadlock ? " [deadlock]" : "");
  }
  if (opt.verifyHierarchical) {
    if (tool.hierarchicalDivergences() > 0) {
      std::printf("verify-hierarchical: %u DIVERGENT round(s)\n",
                  tool.hierarchicalDivergences());
      return 3;
    }
    if (tool.detectionsRun() > 0) {
      std::printf("verify-hierarchical: %u round(s), zero divergences\n",
                  tool.detectionsRun());
    }
  }
  if (opt.verifyIncremental) {
    if (tool.verifyDivergences() > 0) {
      std::printf("verify-incremental: %u DIVERGENT round(s)\n",
                  tool.verifyDivergences());
      return 3;
    }
    if (tool.detectionsRun() > 0) {
      std::printf("verify-incremental: %u round(s), zero divergences\n",
                  tool.detectionsRun());
    }
  }

  if (!tool.report()) {
    std::puts("\nverdict: no detection round ran (analysis finished cleanly)");
    return 0;
  }
  const wfg::Report& report = *tool.report();
  std::printf("\nverdict: %s\n", report.summary.c_str());
  if (report.deadlock) {
    const auto& t = report.times;
    std::printf("detection time: %s (sync %s, gather %s, build %s, check %s, "
                "output %s)\n",
                support::formatDurationNs(t.totalNs()).c_str(),
                support::formatDurationNs(t.synchronizationNs).c_str(),
                support::formatDurationNs(t.wfgGatherNs).c_str(),
                support::formatDurationNs(t.graphBuildNs).c_str(),
                support::formatDurationNs(t.deadlockCheckNs).c_str(),
                support::formatDurationNs(t.outputGenerationNs).c_str());
    std::printf("wait-for graph: %s arcs\n",
                support::withCommas(report.check.arcCount).c_str());
  }

  if (!opt.htmlPath.empty()) {
    std::ofstream out(opt.htmlPath);
    out << report.html;
    std::printf("HTML report written to %s\n", opt.htmlPath.c_str());
  }

  // Re-derive the graph artifacts from a fresh detection if requested: the
  // report retains the summary; DOT needs the graph, so rebuild it from the
  // tool's gathered state via a recorder-less trick — re-run detection is
  // not possible post-hoc, so emit from the report's data when available.
  if (report.deadlock &&
      (!opt.dotPath.empty() || !opt.compressedDotPath.empty())) {
    // Rebuild conditions by querying the trackers directly.
    wfg::WaitForGraph graph(opt.procs);
    for (trace::ProcId p = 0; p < opt.procs; ++p) {
      graph.setNode(
          tool.tracker(tool.topology().nodeOfProc(p)).waitConditions(p));
    }
    graph.pruneCollectiveCoWaiters();
    if (!opt.dotPath.empty()) {
      std::ofstream out(opt.dotPath);
      graph.writeDot([&](std::string_view s) { out << s; },
                     report.check.deadlocked);
      std::printf("DOT graph written to %s\n", opt.dotPath.c_str());
    }
    if (!opt.compressedDotPath.empty()) {
      const wfg::CompressedGraph compressed =
          wfg::compress(graph, report.check.deadlocked);
      std::ofstream out(opt.compressedDotPath);
      out << compressed.toDot();
      std::printf("compressed DOT written to %s (%s)\n",
                  opt.compressedDotPath.c_str(),
                  compressed.summary().c_str());
    }
  }
  return report.deadlock ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printUsage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "list") return listWorkloads();
  if (command == "fuzz") return runFuzz(argc, argv);
  if (command == "serve") return runServe(argc, argv);
  if (command != "run" && command != "top") {
    printUsage();
    return 1;
  }

  Options opt;
  opt.top = command == "top";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      opt.workload = value();
    } else if (arg == "--procs") {
      opt.procs = std::atoi(value());
    } else if (arg == "--fanin") {
      opt.fanIn = std::atoi(value());
    } else if (arg == "--iterations") {
      opt.iterations = std::atoi(value());
    } else if (arg == "--distance") {
      opt.distance = std::atoi(value());
    } else if (arg == "--active") {
      opt.active = std::atoi(value());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(value());
    } else if (arg == "--engine-stats") {
      opt.engineStats = true;
    } else if (arg == "--periodic-ms") {
      opt.periodic = static_cast<sim::Duration>(std::atof(value()) * 1e6);
    } else if (arg == "--no-incremental") {
      opt.noIncremental = true;
    } else if (arg == "--verify-incremental") {
      opt.verifyIncremental = true;
    } else if (arg == "--hierarchical-check") {
      opt.hierarchicalCheck = true;
    } else if (arg == "--verify-hierarchical") {
      opt.verifyHierarchical = true;
    } else if (arg == "--hybrid") {
      opt.hybrid = true;
    } else if (arg == "--verify-hybrid") {
      opt.verifyHybrid = true;
    } else if (arg == "--prune-pings") {
      opt.prunePings = true;
    } else if (arg == "--warm-threshold") {
      opt.warmThreshold = std::atof(value());
    } else if (arg == "--dot") {
      opt.dotPath = value();
    } else if (arg == "--compressed-dot") {
      opt.compressedDotPath = value();
    } else if (arg == "--html") {
      opt.htmlPath = value();
    } else if (arg == "--metrics") {
      opt.metricsPath = value();
    } else if (arg == "--trace-out") {
      opt.traceOut = value();
    } else if (arg == "--trace-depth") {
      opt.traceDepth = std::atoi(value());
    } else if (arg == "--telemetry") {
      opt.telemetry = true;
    } else if (arg == "--status-out") {
      opt.statusOut = value();
    } else if (arg == "--status-interval-ms") {
      opt.statusInterval = static_cast<sim::Duration>(std::atof(value()) * 1e6);
    } else if (arg == "--beat-interval-ms") {
      opt.beatInterval = static_cast<sim::Duration>(std::atof(value()) * 1e6);
    } else if (arg == "--timeline-out") {
      opt.timelineOut = value();
    } else if (arg == "--mute-node") {
      opt.muteNode = std::atoi(value());
    } else if (arg == "--batch") {
      opt.batch = true;
    } else if (arg == "--centralized") {
      opt.centralized = true;
    } else if (arg == "--faithful") {
      opt.faithful = true;
    } else if (arg == "--no-buffer") {
      opt.noBuffer = true;
    } else if (arg == "--rooted-collectives") {
      opt.rootedCollectives = true;
    } else if (arg == "--prioritize") {
      opt.prioritize = true;
    } else if (arg == "--compare") {
      opt.compare = true;
    } else if (arg == "--help" || arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (opt.procs < 2) {
    std::fprintf(stderr, "--procs must be at least 2\n");
    return 1;
  }
  if (opt.threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 1;
  }
  return runWorkload(opt);
}
